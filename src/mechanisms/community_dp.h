// community_dp: a community-preserving differentially private release in
// the style of Chen-Mauw-Ramirez-Cruz (arXiv:1909.00280).
//
// Fit pipeline, every stage charged through one dp::PrivacyAccountant
// (sequential composition; the exact power-of-two shares sum to the global
// epsilon):
//
//   1. Private partition (eps/2, two label-propagation passes at eps/4
//      each): nodes start at block i mod B, then each pass re-assigns
//      every node via the exponential mechanism over its per-block
//      neighbor counts (sensitivity 1; one edge participates in at most
//      two selections per pass, so a pass composes to its eps/4 share).
//   2. Block-pair edge counts (eps/4): the edge count of every unordered
//      block pair noised with the two-sided geometric mechanism. The
//      pairs partition the edge set, so parallel composition applies —
//      the whole stage costs one eps/4.
//   3. Per-block attribute histograms (eps/4): counts of each attribute
//      configuration per block, geometric noise at sensitivity 2 (one
//      node's attribute change moves one unit between two buckets);
//      blocks partition the node set, so parallel composition again.
//
// Sampling reconstructs a graph from the noised block model: attributes
// drawn per node from its block's histogram, then each block pair filled
// with its noised count of distinct random edges.
#pragma once

#include <memory>

#include "src/mechanisms/release_mechanism.h"

namespace agmdp::mechanisms {

util::Result<pipeline::ReleaseArtifact> FitCommunityDp(
    const graph::AttributedGraph& input, const pipeline::PipelineConfig& config,
    util::Rng& rng);

util::Result<std::shared_ptr<const ArtifactSampler>> MakeCommunitySampler(
    const pipeline::ReleaseArtifact& artifact);

}  // namespace agmdp::mechanisms

#include "src/mechanisms/community_dp.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "src/dp/exponential_mechanism.h"
#include "src/dp/geometric_mechanism.h"
#include "src/dp/privacy_budget.h"
#include "src/util/alias_sampler.h"

namespace agmdp::mechanisms {

namespace {

util::Status Invalid(const std::string& what) {
  return util::Status::InvalidArgument("community_dp: " + what);
}

// Triangular index of the unordered block pair {i, j}, i <= j, over B
// blocks — the layout of MechanismPayload::block_edges.
size_t PairIndex(size_t i, size_t j, size_t blocks) {
  if (i > j) std::swap(i, j);
  return i * blocks - i * (i - 1) / 2 + (j - i);
}

// Edge capacity of the (i, j) block pair given block sizes.
uint64_t PairCapacity(size_t i, size_t j, const std::vector<uint64_t>& sizes) {
  if (i == j) {
    const uint64_t s = sizes[i];
    return s < 2 ? 0 : s * (s - 1) / 2;
  }
  return sizes[i] * sizes[j];
}

// Block count heuristic when the config leaves it at 0: sqrt(n)/8 keeps
// per-pair capacities dense enough to survive geometric noise at small
// epsilon, clamped to [2, 64] and never beyond n.
uint32_t ResolveBlocks(uint32_t configured, graph::NodeId n) {
  uint64_t blocks = configured;
  if (blocks == 0) {
    blocks = static_cast<uint64_t>(std::llround(std::sqrt(
        static_cast<double>(n)) / 8.0));
    blocks = std::max<uint64_t>(2, std::min<uint64_t>(64, blocks));
  }
  return static_cast<uint32_t>(std::max<uint64_t>(
      1, std::min<uint64_t>(blocks, n)));
}

class CommunitySampler final : public ArtifactSampler {
 public:
  static util::Result<std::shared_ptr<const ArtifactSampler>> Build(
      const pipeline::ReleaseArtifact& artifact) {
    auto sampler = std::make_shared<CommunitySampler>();
    const pipeline::MechanismPayload& payload = artifact.payload;
    sampler->w_ = artifact.params.w;
    sampler->node_blocks_ = payload.node_blocks;
    const size_t blocks = payload.num_blocks;
    sampler->members_.resize(blocks);
    for (graph::NodeId v = 0;
         v < static_cast<graph::NodeId>(payload.node_blocks.size()); ++v) {
      sampler->members_[payload.node_blocks[v]].push_back(v);
    }
    std::vector<uint64_t> sizes(blocks);
    for (size_t b = 0; b < blocks; ++b) {
      sizes[b] = sampler->members_[b].size();
    }
    // Noised counts are clamped to each pair's capacity here (not trusted
    // from the artifact), so a tampered payload can at worst waste time.
    sampler->pair_targets_.resize(payload.block_edges.size());
    for (size_t i = 0; i < blocks; ++i) {
      for (size_t j = i; j < blocks; ++j) {
        const size_t idx = PairIndex(i, j, blocks);
        const uint64_t capacity = PairCapacity(i, j, sizes);
        const double count = std::max(0.0, payload.block_edges[idx]);
        sampler->pair_targets_[idx] = std::min<uint64_t>(
            capacity, static_cast<uint64_t>(std::llround(count)));
      }
    }
    const size_t configs = graph::NumNodeConfigs(sampler->w_);
    sampler->attr_samplers_.reserve(blocks);
    for (size_t b = 0; b < blocks; ++b) {
      std::vector<double> row(
          payload.block_attr.begin() +
              static_cast<std::ptrdiff_t>(b * configs),
          payload.block_attr.begin() +
              static_cast<std::ptrdiff_t>((b + 1) * configs));
      auto alias = util::AliasSampler::Build(row);
      if (!alias.ok()) return alias.status();
      sampler->attr_samplers_.push_back(std::move(alias).value());
    }
    return std::shared_ptr<const ArtifactSampler>(std::move(sampler));
  }

  util::Result<graph::AttributedGraph> Sample(util::Rng& rng) const override {
    const auto n = static_cast<graph::NodeId>(node_blocks_.size());
    graph::AttributedGraph out(graph::Graph(n), w_);
    for (graph::NodeId v = 0; v < n; ++v) {
      out.set_attribute(v, static_cast<graph::AttrConfig>(
                               attr_samplers_[node_blocks_[v]].Sample(rng)));
    }
    uint64_t total = 0;
    for (uint64_t target : pair_targets_) total += target;
    out.structure().ReserveEdges(total);
    const size_t blocks = members_.size();
    for (size_t i = 0; i < blocks; ++i) {
      for (size_t j = i; j < blocks; ++j) {
        const uint64_t target = pair_targets_[PairIndex(i, j, blocks)];
        if (target == 0) continue;
        const std::vector<graph::NodeId>& left = members_[i];
        const std::vector<graph::NodeId>& right = members_[j];
        // Rejection sampling of distinct pairs; the capacity clamp keeps
        // the target feasible, and the attempt cap bounds the worst case
        // (a nearly full pair) without biasing typical draws.
        uint64_t added = 0;
        uint64_t attempts = 0;
        const uint64_t max_attempts = 4 * target + 100;
        while (added < target && attempts < max_attempts) {
          ++attempts;
          const graph::NodeId u = left[rng.UniformIndex(left.size())];
          const graph::NodeId v = right[rng.UniformIndex(right.size())];
          if (u == v) continue;
          if (out.structure().AddEdge(u, v)) ++added;
        }
      }
    }
    return out;
  }

  uint64_t ApproxBytes() const override {
    return node_blocks_.size() * sizeof(uint32_t) +
           node_blocks_.size() * sizeof(graph::NodeId) +
           pair_targets_.size() * sizeof(uint64_t) +
           attr_samplers_.size() * (size_t{1} << w_) * 16 +
           sizeof(CommunitySampler);
  }

  int w_ = 0;
  std::vector<uint32_t> node_blocks_;
  std::vector<std::vector<graph::NodeId>> members_;
  std::vector<uint64_t> pair_targets_;
  std::vector<util::AliasSampler> attr_samplers_;
};

}  // namespace

util::Result<pipeline::ReleaseArtifact> FitCommunityDp(
    const graph::AttributedGraph& input, const pipeline::PipelineConfig& config,
    util::Rng& rng) {
  const graph::NodeId n = input.num_nodes();
  if (n == 0) return Invalid("input graph has no nodes");
  const int w = input.num_attributes();
  const size_t configs = graph::NumNodeConfigs(w);
  const uint32_t blocks = ResolveBlocks(config.community_blocks, n);

  dp::PrivacyAccountant accountant(config.epsilon);
  // eps/4 is exact in binary floating point, so the four stage shares sum
  // back to the global epsilon bit for bit.
  const double share = config.epsilon / 4.0;

  // Stage 1: private partition. Deterministic i mod B start, then two
  // sequential exponential-mechanism label-propagation passes. One edge
  // enters at most two per-node selections per pass (its two endpoints),
  // so each selection runs at half the pass share.
  std::vector<uint32_t> labels(n);
  for (graph::NodeId v = 0; v < n; ++v) labels[v] = v % blocks;
  for (int pass = 0; pass < 2; ++pass) {
    if (auto st = accountant.Spend(share,
                                   "partition_pass_" + std::to_string(pass));
        !st.ok()) {
      return st;
    }
    const double per_node_epsilon = share / 2.0;
    std::vector<double> scores(blocks);
    for (graph::NodeId v = 0; v < n; ++v) {
      std::fill(scores.begin(), scores.end(), 0.0);
      for (graph::NodeId u : input.structure().Neighbors(v)) {
        scores[labels[u]] += 1.0;
      }
      auto choice = dp::ExponentialMechanism(scores, /*sensitivity=*/1.0,
                                             per_node_epsilon, rng);
      if (!choice.ok()) return choice.status();
      labels[v] = static_cast<uint32_t>(choice.value());
    }
  }

  std::vector<uint64_t> sizes(blocks, 0);
  for (uint32_t label : labels) ++sizes[label];

  // Stage 2: block-pair edge counts. The pairs partition the edge set, so
  // noising every count at the full stage share is parallel composition.
  if (auto st = accountant.Spend(share, "block_edges"); !st.ok()) return st;
  std::vector<double> block_edges(size_t{blocks} * (blocks + 1) / 2, 0.0);
  input.structure().ForEachEdge([&](graph::NodeId u, graph::NodeId v) {
    block_edges[PairIndex(labels[u], labels[v], blocks)] += 1.0;
  });
  for (size_t i = 0; i < blocks; ++i) {
    for (size_t j = i; j < blocks; ++j) {
      const size_t idx = PairIndex(i, j, blocks);
      const int64_t noised = dp::GeometricMechanism(
          static_cast<int64_t>(block_edges[idx]), /*sensitivity=*/1.0, share,
          rng);
      const auto capacity =
          static_cast<int64_t>(PairCapacity(i, j, sizes));
      block_edges[idx] = static_cast<double>(
          std::max<int64_t>(0, std::min(noised, capacity)));
    }
  }

  // Stage 3: per-block attribute histograms. Blocks partition the node
  // set (parallel composition); changing one node's attributes moves one
  // unit between two buckets of its block's histogram, hence sensitivity 2.
  if (auto st = accountant.Spend(share, "block_attributes"); !st.ok()) {
    return st;
  }
  std::vector<double> block_attr(size_t{blocks} * configs, 0.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    block_attr[size_t{labels[v]} * configs + input.attribute(v)] += 1.0;
  }
  for (size_t b = 0; b < blocks; ++b) {
    double row_sum = 0.0;
    for (size_t y = 0; y < configs; ++y) {
      const size_t idx = b * configs + y;
      const int64_t noised = dp::GeometricMechanism(
          static_cast<int64_t>(block_attr[idx]), /*sensitivity=*/2.0, share,
          rng);
      block_attr[idx] = static_cast<double>(std::max<int64_t>(0, noised));
      row_sum += block_attr[idx];
    }
    if (row_sum <= 0.0) {
      // Noise wiped the whole histogram (possible for tiny blocks at small
      // epsilon); fall back to uniform so the block stays samplable.
      for (size_t y = 0; y < configs; ++y) block_attr[b * configs + y] = 1.0;
    }
  }

  pipeline::ReleaseArtifact artifact =
      pipeline::MakeReleaseArtifact(agm::AgmParams{}, config);
  artifact.mechanism = "community_dp";
  artifact.model = "community_dp";
  artifact.params.w = w;
  artifact.payload.num_blocks = blocks;
  artifact.payload.node_blocks = std::move(labels);
  artifact.payload.block_edges = std::move(block_edges);
  artifact.payload.block_attr = std::move(block_attr);
  artifact.epsilon_budget = accountant.total();
  artifact.epsilon_spent = accountant.spent();
  artifact.ledger = accountant.ledger();
  return artifact;
}

util::Result<std::shared_ptr<const ArtifactSampler>> MakeCommunitySampler(
    const pipeline::ReleaseArtifact& artifact) {
  if (artifact.mechanism != "community_dp") {
    return Invalid("artifact is tagged '" + artifact.mechanism + "'");
  }
  return CommunitySampler::Build(artifact);
}

}  // namespace agmdp::mechanisms

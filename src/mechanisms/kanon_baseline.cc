#include "src/mechanisms/kanon_baseline.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "src/graph/degree.h"
#include "src/models/chung_lu.h"
#include "src/util/alias_sampler.h"

namespace agmdp::mechanisms {

namespace {

util::Status Invalid(const std::string& what) {
  return util::Status::InvalidArgument("kanon_baseline: " + what);
}

uint32_t ResolveK(uint32_t configured, double epsilon, graph::NodeId n) {
  uint64_t k = configured;
  if (k == 0) {
    k = static_cast<uint64_t>(std::max<int64_t>(
        2, std::llround(2.0 / epsilon)));
  }
  return static_cast<uint32_t>(std::min<uint64_t>(k, n));
}

class KanonSampler final : public ArtifactSampler {
 public:
  static util::Result<std::shared_ptr<const ArtifactSampler>> Build(
      const pipeline::ReleaseArtifact& artifact) {
    auto sampler = std::make_shared<KanonSampler>();
    const pipeline::MechanismPayload& payload = artifact.payload;
    sampler->w_ = artifact.params.w;
    sampler->degrees_ = artifact.params.degree_sequence;
    sampler->node_blocks_ = payload.node_blocks;
    const size_t configs = graph::NumNodeConfigs(sampler->w_);
    sampler->attr_samplers_.reserve(payload.num_blocks);
    for (size_t b = 0; b < payload.num_blocks; ++b) {
      std::vector<double> row(
          payload.block_attr.begin() +
              static_cast<std::ptrdiff_t>(b * configs),
          payload.block_attr.begin() +
              static_cast<std::ptrdiff_t>((b + 1) * configs));
      auto alias = util::AliasSampler::Build(row);
      if (!alias.ok()) return alias.status();
      sampler->attr_samplers_.push_back(std::move(alias).value());
    }
    return std::shared_ptr<const ArtifactSampler>(std::move(sampler));
  }

  util::Result<graph::AttributedGraph> Sample(util::Rng& rng) const override {
    // Attributes first, structure second — a fixed draw order so the
    // sample is a pure function of the stream.
    std::vector<graph::AttrConfig> attrs(degrees_.size());
    for (size_t v = 0; v < attrs.size(); ++v) {
      attrs[v] = static_cast<graph::AttrConfig>(
          attr_samplers_[node_blocks_[v]].Sample(rng));
    }
    auto structure = models::FastChungLu(degrees_, rng);
    if (!structure.ok()) return structure.status();
    graph::AttributedGraph out(std::move(structure).value(), w_);
    if (auto st = out.SetAttributes(std::move(attrs)); !st.ok()) return st;
    return out;
  }

  uint64_t ApproxBytes() const override {
    return degrees_.size() * sizeof(uint32_t) +
           node_blocks_.size() * sizeof(uint32_t) +
           attr_samplers_.size() * (size_t{1} << w_) * 16 +
           sizeof(KanonSampler);
  }

  int w_ = 0;
  std::vector<uint32_t> degrees_;
  std::vector<uint32_t> node_blocks_;
  std::vector<util::AliasSampler> attr_samplers_;
};

}  // namespace

util::Result<pipeline::ReleaseArtifact> FitKanonBaseline(
    const graph::AttributedGraph& input, const pipeline::PipelineConfig& config,
    util::Rng& rng) {
  (void)rng;  // Syntactic anonymization is deterministic: no noise drawn.
  const graph::NodeId n = input.num_nodes();
  if (n < 2) return Invalid("input graph needs at least 2 nodes");
  const int w = input.num_attributes();
  const size_t configs = graph::NumNodeConfigs(w);
  const uint32_t k = ResolveK(config.k_anonymity, config.epsilon, n);

  // Degree k-anonymization: group the degree-sorted nodes k at a time and
  // publish each group's median. Sorting is stable by node index so the
  // grouping — hence the whole fit — is deterministic.
  const std::vector<uint32_t> degrees =
      graph::DegreeSequence(input.structure());
  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&degrees](graph::NodeId a, graph::NodeId b) {
                     return degrees[a] > degrees[b];
                   });
  const size_t num_groups = std::max<size_t>(1, n / k);
  std::vector<uint32_t> anonymized(n, 0);
  std::vector<uint32_t> node_blocks(n, 0);
  for (size_t g = 0; g < num_groups; ++g) {
    const size_t start = g * k;
    const size_t end = (g + 1 == num_groups) ? n : (g + 1) * k;
    const uint32_t median = degrees[order[start + (end - start) / 2]];
    for (size_t i = start; i < end; ++i) {
      anonymized[order[i]] = median;
      node_blocks[order[i]] = static_cast<uint32_t>(g);
    }
  }

  // t-closeness: blend each group's attribute distribution q toward the
  // global one p just enough that TV(q', p) <= t. TV scales linearly under
  // the blend q' = p + lambda (q - p), so lambda = min(1, t / TV(q, p)).
  std::vector<double> global(configs, 0.0);
  for (graph::NodeId v = 0; v < n; ++v) global[input.attribute(v)] += 1.0;
  for (double& mass : global) mass /= static_cast<double>(n);
  std::vector<double> block_attr(num_groups * configs, 0.0);
  std::vector<size_t> group_sizes(num_groups, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    block_attr[size_t{node_blocks[v]} * configs + input.attribute(v)] += 1.0;
    ++group_sizes[node_blocks[v]];
  }
  for (size_t g = 0; g < num_groups; ++g) {
    double tv = 0.0;
    for (size_t y = 0; y < configs; ++y) {
      double& mass = block_attr[g * configs + y];
      mass /= static_cast<double>(group_sizes[g]);
      tv += std::fabs(mass - global[y]);
    }
    tv *= 0.5;
    const double lambda =
        tv > config.t_closeness && tv > 0.0 ? config.t_closeness / tv : 1.0;
    for (size_t y = 0; y < configs; ++y) {
      double& mass = block_attr[g * configs + y];
      mass = global[y] + lambda * (mass - global[y]);
      if (mass < 0.0) mass = 0.0;  // guard float dust at tiny masses
    }
  }

  pipeline::ReleaseArtifact artifact =
      pipeline::MakeReleaseArtifact(agm::AgmParams{}, config);
  artifact.mechanism = "kanon_baseline";
  artifact.model = "kanon_baseline";
  artifact.params.w = w;
  artifact.params.degree_sequence = std::move(anonymized);
  artifact.payload.num_blocks = static_cast<uint32_t>(num_groups);
  artifact.payload.node_blocks = std::move(node_blocks);
  artifact.payload.block_attr = std::move(block_attr);
  artifact.payload.k_anonymity = k;
  artifact.payload.t_closeness = config.t_closeness;
  // No accountant ran: budget, spent, and the ledger stay zero/empty, and
  // ValidateReleaseArtifact enforces exactly that for this tag.
  return artifact;
}

util::Result<std::shared_ptr<const ArtifactSampler>> MakeKanonSampler(
    const pipeline::ReleaseArtifact& artifact) {
  if (artifact.mechanism != "kanon_baseline") {
    return Invalid("artifact is tagged '" + artifact.mechanism + "'");
  }
  return KanonSampler::Build(artifact);
}

}  // namespace agmdp::mechanisms

// Mechanism tags and the privacy-model taxonomy shared by every layer
// that handles release artifacts. This header deliberately depends on
// nothing outside the standard library so pipeline/, registry/, and
// server/ can include it without a dependency cycle on src/mechanisms/.
//
// A mechanism tag names the publication scheme that produced a
// ReleaseArtifact. The tag travels in the artifact JSON, is validated at
// every read boundary (unknown tag -> typed InvalidArgument, see
// pipeline::ValidateReleaseArtifact), and selects the serving path in
// pipeline::ReleaseEngine::Create.
#ifndef AGMDP_SRC_MECHANISMS_MECHANISM_TAGS_H_
#define AGMDP_SRC_MECHANISMS_MECHANISM_TAGS_H_

#include <string>
#include <vector>

namespace agmdp {
namespace mechanisms {

// The declared privacy model of a release mechanism. Edge-DP and node-DP
// mechanisms spend epsilon through the PrivacyAccountant; syntactic
// mechanisms (k-anonymity / t-closeness) carry an epsilon-free ledger and
// must assert zero spend at validation.
enum class PrivacyModel {
  kEdgeDp,
  kNodeDp,
  kSyntactic,
};

inline const char* PrivacyModelName(PrivacyModel model) {
  switch (model) {
    case PrivacyModel::kEdgeDp:
      return "edge_dp";
    case PrivacyModel::kNodeDp:
      return "node_dp";
    case PrivacyModel::kSyntactic:
      return "syntactic";
  }
  return "unknown";
}

// Canonical mechanism tags. "agm" is the paper's pipeline; the others are
// the competing publication schemes registered in release_mechanism.cc.
inline const std::vector<std::string>& KnownMechanismTags() {
  static const std::vector<std::string>* tags =
      new std::vector<std::string>{"agm", "community_dp", "kanon_baseline"};
  return *tags;
}

inline bool IsKnownMechanismTag(const std::string& tag) {
  for (const std::string& known : KnownMechanismTags()) {
    if (known == tag) return true;
  }
  return false;
}

// "agm, community_dp, kanon_baseline" — for error messages at the
// validation boundary.
inline std::string KnownMechanismTagList() {
  std::string out;
  for (const std::string& tag : KnownMechanismTags()) {
    if (!out.empty()) out += ", ";
    out += tag;
  }
  return out;
}

}  // namespace mechanisms
}  // namespace agmdp

#endif  // AGMDP_SRC_MECHANISMS_MECHANISM_TAGS_H_

// Erdős–Rényi random graphs (substrate / sanity baseline).
#pragma once

#include <cstdint>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace agmdp::models {

/// G(n, p): each pair independently an edge with probability p. Uses
/// geometric edge skipping, O(n + m) expected time.
graph::Graph ErdosRenyiGnp(graph::NodeId n, double p, util::Rng& rng);

/// G(n, m): exactly m distinct edges sampled uniformly (m is capped at
/// C(n, 2)).
graph::Graph ErdosRenyiGnm(graph::NodeId n, uint64_t m, util::Rng& rng);

}  // namespace agmdp::models

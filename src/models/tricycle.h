// TriCycLe random graph model — Algorithm 1 of the paper.
//
// Start from a (bias-corrected) Fast Chung-Lu seed graph, then repeatedly
// propose transitive "friend of a friend" edges: sample v_i from the
// degree-proportional pi distribution, pick a uniform neighbor v_k, a
// uniform neighbor v_j of v_k, and try to swap the *oldest* edge in the
// graph for {v_i, v_j}. The swap is kept only if it does not decrease the
// triangle count; a rejected swap re-inserts the old edge as the *youngest*
// (the paper's anti-livelock detail). The process ends when the target
// triangle count n∆ is reached.
//
// Extensions from Section 3.3 are implemented and on by default: degree-one
// nodes are excluded from pi and from the seed graph (they cannot join
// triangles) and orphaned nodes are rewired by PostProcessGraph, applied to
// the seed and to the final graph.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/models/chung_lu.h"
#include "src/models/edge_filter.h"
#include "src/models/post_process.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::models {

struct TriCycLeOptions {
  /// Exclude degree-one nodes from pi / the seed and wire them up in
  /// post-processing (the paper's orphan extension).
  bool exclude_degree_one = true;
  /// Run Algorithm 2 on the seed and final graphs.
  bool post_process = true;
  /// cFCL bias correction for the seed graph.
  bool seed_bias_correction = true;
  /// Rewiring proposal budget; 0 means 200 * m. Guards the paper's
  /// potentially unbounded loop (documented deviation).
  uint64_t max_proposals = 0;
  /// Optional AGM acceptance filter, applied to proposed transitive edges
  /// and to the seed graph (Section 4).
  EdgeFilter filter;
  PostProcessOptions post_process_options;
};

struct TriCycLeResult {
  graph::Graph graph;
  uint64_t target_triangles = 0;
  uint64_t achieved_triangles = 0;  // recounted on the final graph
  uint64_t proposals = 0;
  bool reached_target = false;
};

/// Generates a TriCycLe graph whose expected degrees follow `degrees`
/// (indexed by synthetic node id) and whose triangle count approaches
/// `target_triangles`.
util::Result<TriCycLeResult> GenerateTriCycLe(
    const std::vector<uint32_t>& degrees, uint64_t target_triangles,
    util::Rng& rng, const TriCycLeOptions& options = {});

}  // namespace agmdp::models

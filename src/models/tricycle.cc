#include "src/models/tricycle.h"

#include <algorithm>

#include "src/graph/triangle_count.h"
#include "src/models/edge_age_queue.h"
#include "src/util/check.h"
#include "src/util/math_util.h"

namespace agmdp::models {

namespace {

// Common-neighbor counting scratch for the sequential rewiring loop.
//
// Graph::CommonNeighborCount probes the global edge-set hash once per
// neighbor of the lower-degree endpoint; on the degree-biased pairs the
// rewiring loop evaluates (both endpoints drawn ~proportional to degree),
// those probes are scattered reads over a table far larger than cache. The
// stamp strategy instead marks Γ(a) in a dense per-node epoch array (n
// uint32s — L2-resident at our scales) and scans Γ(b) against it: two
// sequential passes, deg(a) + deg(b) work, no hashing. For strongly
// asymmetric pairs (leaf × hub) the probe strategy's min-degree factor
// still wins, so Count picks per query.
class NeighborStamp {
 public:
  explicit NeighborStamp(graph::NodeId n) : stamp_(n, 0) {}

  uint32_t Count(const graph::Graph& g, graph::NodeId a, graph::NodeId b) {
    const auto& na = g.Neighbors(a);
    const auto& nb = g.Neighbors(b);
    const size_t total = na.size() + nb.size();
    const size_t smaller = std::min(na.size(), nb.size());
    // ~16 stamp-array touches cost about one scattered hash probe.
    if (total > 16 * smaller) return g.CommonNeighborCount(a, b);
    if (++epoch_ == 0) {  // epoch wrapped: all stamps are stale-but-valid
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
    for (graph::NodeId w : na) stamp_[w] = epoch_;
    uint32_t count = 0;
    // w == a cannot be stamped (a is never its own neighbor) and w == b
    // never appears in Γ(b), so no endpoint exclusion is needed.
    for (graph::NodeId w : nb) count += stamp_[w] == epoch_ ? 1 : 0;
    return count;
  }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
};

}  // namespace

util::Result<TriCycLeResult> GenerateTriCycLe(
    const std::vector<uint32_t>& degrees, uint64_t target_triangles,
    util::Rng& rng, const TriCycLeOptions& options) {
  if (degrees.empty()) {
    return util::Status::InvalidArgument("TriCycLe: empty degree sequence");
  }
  const auto n = static_cast<graph::NodeId>(degrees.size());

  uint64_t total_degree = 0;
  uint64_t degree_one = 0;
  for (uint32_t d : degrees) {
    total_degree += d;
    if (d == 1) ++degree_one;
  }
  const uint64_t m_target = total_degree / 2;
  if (m_target == 0) {
    TriCycLeResult empty{graph::Graph(n), target_triangles, 0, 0,
                         target_triangles == 0};
    return empty;
  }

  // pi with degree-one nodes excluded (falling back to inclusion when the
  // sequence has no higher-degree mass at all).
  bool exclude = options.exclude_degree_one;
  auto pi = BuildPiSampler(degrees, exclude);
  if (!pi.ok() && exclude) {
    exclude = false;
    pi = BuildPiSampler(degrees, false);
  }
  if (!pi.ok()) return pi.status();

  // Seed graph: m - |N1| edges over the pi-eligible nodes (line 2 + the
  // extension), with edge insertion order recorded for the age queue.
  std::vector<uint32_t> seed_degrees = degrees;
  if (exclude) {
    for (auto& d : seed_degrees) {
      if (d == 1) d = 0;
    }
  }
  ChungLuOptions seed_options;
  seed_options.bias_correction = options.seed_bias_correction;
  seed_options.target_edges =
      exclude ? (m_target > degree_one ? m_target - degree_one : 1) : m_target;
  seed_options.filter = options.filter;
  std::vector<graph::Edge> insertion_order;
  seed_options.insertion_order = &insertion_order;
  auto seed = FastChungLu(seed_degrees, rng, seed_options);
  if (!seed.ok()) return seed.status();
  graph::Graph g = std::move(seed).value();

  EdgeAgeQueue age;
  for (const graph::Edge& e : insertion_order) age.Push(e);

  if (options.post_process) {
    std::vector<graph::Edge> added;
    PostProcessGraph(&g, degrees, pi.value(), rng,
                     options.post_process_options, &added);
    for (const graph::Edge& e : added) age.Push(e);
  }

  uint64_t tau = graph::CountTriangles(g);
  const uint64_t max_proposals =
      options.max_proposals > 0 ? options.max_proposals
                                : util::SaturatingMul(200, m_target);

  TriCycLeResult result;
  result.target_triangles = target_triangles;

  NeighborStamp common_neighbors(n);
  uint64_t proposals = 0;
  while (tau < target_triangles && proposals < max_proposals) {
    ++proposals;
    // Lines 5-9: friend-of-a-friend proposal.
    auto vi = static_cast<graph::NodeId>(pi.value().Sample(rng));
    if (g.Degree(vi) == 0) continue;
    const auto& gamma_i = g.Neighbors(vi);
    graph::NodeId vk = gamma_i[rng.UniformIndex(gamma_i.size())];
    const auto& gamma_k = g.Neighbors(vk);
    graph::NodeId vj = gamma_k[rng.UniformIndex(gamma_k.size())];
    if (vj == vi || g.HasEdge(vi, vj)) continue;
    // AGM-DP's modified line-10 condition: the acceptance filter gates the
    // proposed edge (Section 4, footnote 4).
    if (!AcceptEdge(options.filter, vi, vj, rng)) continue;

    // Line 11: oldest live edge. Entries whose edge was deleted by
    // post-processing are skipped lazily.
    graph::Edge oldest;
    bool have_oldest = false;
    while (age.PopOldest(&oldest)) {
      if (g.HasEdge(oldest.u, oldest.v)) {
        have_oldest = true;
        break;
      }
    }
    if (!have_oldest) break;  // nothing left to replace

    // Lines 12-19: keep the swap only if the net triangle count would not
    // decrease. The old edge is removed before evaluating the proposal
    // (its presence could inflate CN_ij).
    const uint32_t cn_old = common_neighbors.Count(g, oldest.u, oldest.v);
    g.RemoveEdge(oldest.u, oldest.v);
    const uint32_t cn_new = common_neighbors.Count(g, vi, vj);
    if (cn_new >= cn_old) {
      g.AddEdge(vi, vj);
      age.Push(graph::Edge(vi, vj));
      tau += cn_new - cn_old;
    } else {
      g.AddEdge(oldest.u, oldest.v);
      age.Push(oldest);  // undo: re-inserted as the youngest edge
    }
  }

  if (options.post_process) {
    PostProcessGraph(&g, degrees, pi.value(), rng,
                     options.post_process_options, nullptr);
  }

  result.achieved_triangles = graph::CountTriangles(g);
  result.proposals = proposals;
  result.reached_target = result.achieved_triangles >= target_triangles ||
                          tau >= target_triangles;
  result.graph = std::move(g);
  return result;
}

}  // namespace agmdp::models

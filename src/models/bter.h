// Block Two-level Erdős-Rényi (BTER) model — Seshadhri, Kolda & Pinar.
//
// Section 3.3 of the paper evaluates BTER as a structural-model candidate
// and rejects it for the DP pipeline: its parameters (degree-wise
// clustering coefficients) have high global sensitivity under edge
// adjacency. It is implemented here as a *non-private* comparison baseline
// so that claim can be examined, and because it is a strong clustering
// model in its own right.
//
// Phase 1 groups nodes of similar degree into "affinity blocks" of size
// d + 1 wired as dense ER subgraphs whose density is chosen to realize the
// target degree-wise clustering; phase 2 distributes each node's residual
// expected degree with a Chung-Lu pass.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::models {

struct BterParams {
  /// Desired degrees per synthetic node.
  std::vector<uint32_t> degrees;
  /// Degree-wise mean local clustering profile, indexed by degree.
  std::vector<double> clustering_by_degree;
};

/// Measures both parameter sets from an input graph (non-private).
BterParams FitBter(const graph::Graph& g);

/// Generates a BTER graph. Fails on an empty degree sequence.
util::Result<graph::Graph> GenerateBter(const BterParams& params,
                                        util::Rng& rng);

}  // namespace agmdp::models

#include "src/models/chung_lu.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/math_util.h"

namespace agmdp::models {

namespace {

util::Result<graph::Graph> GenerateOnce(
    const std::vector<double>& weights, uint64_t target_edges,
    uint64_t max_proposals, const EdgeFilter& filter,
    std::vector<graph::Edge>* insertion_order, util::Rng& rng) {
  auto sampler = util::AliasSampler::Build(weights);
  if (!sampler.ok()) return sampler.status();

  if (insertion_order != nullptr) {
    insertion_order->clear();
    insertion_order->reserve(static_cast<size_t>(std::min(
        target_edges,
        graph::MaxPossibleEdges(static_cast<graph::NodeId>(weights.size())))));
  }
  graph::Graph g(static_cast<graph::NodeId>(weights.size()));
  g.ReserveEdges(target_edges);  // no rehash churn inside the proposal loop
  uint64_t proposals = 0;
  while (g.num_edges() < target_edges && proposals < max_proposals) {
    ++proposals;
    auto u = static_cast<graph::NodeId>(sampler.value().Sample(rng));
    auto v = static_cast<graph::NodeId>(sampler.value().Sample(rng));
    if (u == v || g.HasEdge(u, v)) continue;
    if (!AcceptEdge(filter, u, v, rng)) continue;
    g.AddEdge(u, v);
    if (insertion_order != nullptr) insertion_order->emplace_back(u, v);
  }
  return g;
}

}  // namespace

util::Result<util::AliasSampler> BuildPiSampler(
    const std::vector<uint32_t>& degrees, bool exclude_degree_one) {
  std::vector<double> weights(degrees.size());
  for (size_t i = 0; i < degrees.size(); ++i) {
    uint32_t d = degrees[i];
    weights[i] = (exclude_degree_one && d <= 1) ? 0.0 : static_cast<double>(d);
  }
  return util::AliasSampler::Build(weights);
}

util::Result<graph::Graph> FastChungLu(const std::vector<uint32_t>& degrees,
                                       util::Rng& rng,
                                       const ChungLuOptions& options) {
  if (degrees.empty()) {
    return util::Status::InvalidArgument("FastChungLu: empty degree sequence");
  }
  uint64_t total_degree = 0;
  for (uint32_t d : degrees) total_degree += d;
  uint64_t target =
      options.target_edges > 0 ? options.target_edges : total_degree / 2;
  if (target == 0) return graph::Graph(static_cast<graph::NodeId>(degrees.size()));

  // Saturate: the per-edge knob is caller-supplied and a wrapped product
  // can silently collapse the proposal budget to ~0.
  const uint64_t max_proposals =
      util::SaturatingMul(options.max_proposals_per_edge, target);
  std::vector<double> weights(degrees.begin(), degrees.end());

  auto first = GenerateOnce(weights, target, max_proposals, options.filter,
                            options.insertion_order, rng);
  if (!first.ok() || !options.bias_correction) return first;

  // cFCL calibration: proposal collisions (duplicate edges) reject
  // high-degree nodes disproportionately, so their realized degrees fall
  // short of the targets. Boost the pi weight of nodes whose desired degree
  // is large enough for the shortfall to be signal rather than sampling
  // noise (low-degree realized counts fluctuate by +-O(sqrt(d)) per pilot,
  // and reweighting on that noise makes things worse).
  const graph::Graph& pilot = first.value();
  const double avg_degree =
      static_cast<double>(total_degree) / static_cast<double>(degrees.size());
  const double hub_threshold = std::max(10.0, 3.0 * avg_degree);
  bool any_adjusted = false;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double desired = degrees[i];
    if (weights[i] <= 0.0 || desired <= hub_threshold) continue;
    const double realized = std::max(
        1.0, static_cast<double>(pilot.Degree(static_cast<graph::NodeId>(i))));
    const double ratio = std::clamp(desired / realized, 1.0, 4.0);
    if (ratio > 1.0 + 1e-9) any_adjusted = true;
    weights[i] *= ratio;
  }
  if (!any_adjusted) return first;
  return GenerateOnce(weights, target, max_proposals, options.filter,
                      options.insertion_order, rng);
}

}  // namespace agmdp::models

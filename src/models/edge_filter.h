// Edge acceptance filters: how AGM injects attribute-correlation
// accept/reject decisions into the structural models (Section 4).
//
// A filter sees a proposed edge {u, v} and returns whether to keep it; AGM's
// filter accepts with probability A(F_w(x_u, x_v)). A null filter accepts
// everything (plain structural sampling).
#pragma once

#include <functional>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace agmdp::models {

using EdgeFilter =
    std::function<bool(graph::NodeId u, graph::NodeId v, util::Rng& rng)>;

inline bool AcceptEdge(const EdgeFilter& filter, graph::NodeId u,
                       graph::NodeId v, util::Rng& rng) {
  return !filter || filter(u, v, rng);
}

}  // namespace agmdp::models

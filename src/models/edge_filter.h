// Edge acceptance filters: how AGM injects attribute-correlation
// accept/reject decisions into the structural models (Section 4).
//
// A filter sees a proposed edge {u, v} and returns whether to keep it; AGM's
// filter accepts with probability A(F_w(x_u, x_v)). A default-constructed
// filter accepts everything (plain structural sampling).
//
// EdgeFilter is a concrete class, not a std::function: the AGM hot path
// evaluates it once per proposal inside the FCL/TriCycLe inner loops, and
// the table mode below turns that evaluation into two array loads — the
// per-node attribute configurations are a flat array indexed by node id,
// and the acceptance probabilities a dense 2^w x 2^w matrix indexed by the
// endpoint configurations — so neither EncodeEdgeConfig's triangular-index
// arithmetic nor a type-erased std::function call survives on the hot path.
// Arbitrary predicates (tests, registry top-up models) still plug in
// through the custom mode, which keeps the old std::function behavior.
#pragma once

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/graph/attribute_encoding.h"
#include "src/graph/graph.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace agmdp::models {

/// \brief Per-proposal edge accept/reject decision.
class EdgeFilter {
 public:
  using Predicate =
      std::function<bool(graph::NodeId u, graph::NodeId v, util::Rng& rng)>;

  /// Pass-through: accepts every edge without consuming randomness.
  EdgeFilter() = default;

  /// Custom predicate — any callable (u, v, rng) -> bool, so
  /// `options.filter = lambda` keeps working. An empty std::function
  /// behaves like the pass-through filter.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EdgeFilter> &&
                std::is_constructible_v<Predicate, F&&>>>
  EdgeFilter(F&& predicate)  // NOLINT(google-explicit-constructor)
      : predicate_(std::forward<F>(predicate)) {}

  /// AGM's acceptance filter: accept {u, v} with probability
  /// A(F_w(x_u, x_v)). `node_configs` holds x (indexed by node id) and
  /// `acceptance_by_config` holds A (indexed by the triangular edge-config
  /// index, length NumEdgeConfigs(w)); both are expanded into the flat
  /// layout described above. The table is shared, not copied, when the same
  /// filter is handed to seed + rewiring passes.
  static EdgeFilter FromAcceptanceTable(
      std::vector<graph::AttrConfig> node_configs,
      const std::vector<double>& acceptance_by_config, int w) {
    const uint32_t k = graph::NumNodeConfigs(w);
    AGMDP_CHECK(acceptance_by_config.size() == graph::NumEdgeConfigs(w));
    auto table = std::make_shared<Table>();
    table->k = k;
    table->node_configs = std::move(node_configs);
    table->accept.resize(static_cast<size_t>(k) * k);
    for (uint32_t a = 0; a < k; ++a) {
      for (uint32_t b = a; b < k; ++b) {
        const double p = acceptance_by_config[graph::EncodeEdgeConfig(a, b, w)];
        table->accept[static_cast<size_t>(a) * k + b] = p;
        table->accept[static_cast<size_t>(b) * k + a] = p;
      }
    }
    EdgeFilter filter;
    filter.table_ = std::move(table);
    return filter;
  }

  /// True when the filter can reject edges (the pass-through state answers
  /// false, letting callers skip the accept call entirely).
  bool active() const { return table_ != nullptr || bool(predicate_); }
  explicit operator bool() const { return active(); }

  /// Accept/reject the proposed edge {u, v}. The table path consumes one
  /// Bernoulli draw from `rng` unless the probability is exactly 0 or 1
  /// (Rng::Bernoulli's own shortcut), a pure function of (x_u, x_v), so the
  /// draw sequence is identical however proposals are sharded.
  bool Accept(graph::NodeId u, graph::NodeId v, util::Rng& rng) const {
    if (table_ != nullptr) {
      const Table& t = *table_;
      const double p =
          t.accept[static_cast<size_t>(t.node_configs[u]) * t.k +
                   t.node_configs[v]];
      return rng.Bernoulli(p);
    }
    if (predicate_) return predicate_(u, v, rng);
    return true;
  }

 private:
  struct Table {
    uint32_t k = 0;
    std::vector<graph::AttrConfig> node_configs;  // x, indexed by node id
    std::vector<double> accept;                   // A, dense k*k row-major
  };

  std::shared_ptr<const Table> table_;
  Predicate predicate_;
};

inline bool AcceptEdge(const EdgeFilter& filter, graph::NodeId u,
                       graph::NodeId v, util::Rng& rng) {
  return filter.Accept(u, v, rng);
}

}  // namespace agmdp::models

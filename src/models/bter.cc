#include "src/models/bter.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/graph/clustering.h"
#include "src/graph/degree.h"
#include "src/util/alias_sampler.h"
#include "src/util/check.h"

namespace agmdp::models {

BterParams FitBter(const graph::Graph& g) {
  BterParams params;
  params.degrees = graph::DegreeSequence(g);
  params.clustering_by_degree = graph::DegreeWiseClustering(g);
  return params;
}

util::Result<graph::Graph> GenerateBter(const BterParams& params,
                                        util::Rng& rng) {
  const size_t n = params.degrees.size();
  if (n == 0) {
    return util::Status::InvalidArgument("BTER: empty degree sequence");
  }

  // Nodes sorted by desired degree ascending; degree-1 nodes skip phase 1
  // (a block of size 2 cannot contribute clustering).
  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](graph::NodeId a, graph::NodeId b) {
                     return params.degrees[a] < params.degrees[b];
                   });

  graph::Graph g(static_cast<graph::NodeId>(n));
  std::vector<double> residual(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    residual[i] = params.degrees[i];
  }

  auto clustering_at = [&](uint32_t d) {
    if (d < params.clustering_by_degree.size()) {
      return std::clamp(params.clustering_by_degree[d], 0.0, 1.0);
    }
    return 0.0;
  };

  // Phase 1: affinity blocks. Each block takes the next (d + 1) unassigned
  // nodes where d is the smallest remaining desired degree >= 2, and is
  // wired as ER(rho) with rho = c_d^(1/3) (a triangle in a block needs
  // three independent edges, so edge density cbrt(c) yields clustering ~c).
  size_t cursor = 0;
  while (cursor < n && params.degrees[order[cursor]] < 2) ++cursor;
  while (cursor < n) {
    const uint32_t d = params.degrees[order[cursor]];
    const size_t block_size =
        std::min<size_t>(static_cast<size_t>(d) + 1, n - cursor);
    if (block_size < 3) break;  // no clustering possible; leave to phase 2
    const double rho = std::cbrt(clustering_at(d));
    for (size_t i = 0; i < block_size; ++i) {
      for (size_t j = i + 1; j < block_size; ++j) {
        if (!rng.Bernoulli(rho)) continue;
        const graph::NodeId u = order[cursor + i];
        const graph::NodeId v = order[cursor + j];
        if (g.AddEdge(u, v)) {
          residual[u] -= 1.0;
          residual[v] -= 1.0;
        }
      }
    }
    cursor += block_size;
  }

  // Phase 2: Chung-Lu over the residual expected degrees.
  double residual_total = 0.0;
  for (double& r : residual) {
    r = std::max(0.0, r);
    residual_total += r;
  }
  const auto phase2_edges = static_cast<uint64_t>(residual_total / 2.0);
  if (phase2_edges > 0) {
    auto sampler = util::AliasSampler::Build(residual);
    if (sampler.ok()) {
      const uint64_t max_proposals = 200 * phase2_edges;
      uint64_t proposals = 0;
      uint64_t added = 0;
      while (added < phase2_edges && proposals < max_proposals) {
        ++proposals;
        const auto u =
            static_cast<graph::NodeId>(sampler.value().Sample(rng));
        const auto v =
            static_cast<graph::NodeId>(sampler.value().Sample(rng));
        if (u == v || !g.AddEdge(u, v)) continue;
        ++added;
      }
    }
  }
  return g;
}

}  // namespace agmdp::models

// Transitive Chung-Lu (TCL) — Pfeiffer et al., the baseline model TriCycLe
// is compared against in Figures 2-3 of the paper.
//
// TCL refines an FCL seed graph: with probability rho a new edge connects a
// pi-sampled node to a uniform two-hop neighbor (creating a triangle), with
// probability 1 - rho it connects two pi-sampled nodes; each successful
// addition evicts the oldest edge. The process runs until every seed edge
// has been replaced. rho is learned from the input graph by EM over the
// per-edge mixture "transitive walk vs pi draw".
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/models/chung_lu.h"
#include "src/models/edge_filter.h"
#include "src/models/post_process.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::models {

struct TclOptions {
  /// Run Algorithm 2 orphan rewiring on the final graph.
  bool post_process = true;
  /// cFCL bias correction for the seed graph.
  bool seed_bias_correction = true;
  /// Proposal budget as a multiple of m (the replacement loop is not
  /// guaranteed to terminate when an acceptance filter is active).
  uint64_t max_proposals_factor = 200;
  /// Optional AGM acceptance filter.
  EdgeFilter filter;
  PostProcessOptions post_process_options;
};

/// Generates a TCL graph with expected degrees `degrees` and transitive
/// closure probability `rho` in [0, 1].
util::Result<graph::Graph> GenerateTcl(const std::vector<uint32_t>& degrees,
                                       double rho, util::Rng& rng,
                                       const TclOptions& options = {});

struct TclFitOptions {
  int em_iterations = 20;
  /// Edges sampled per EM pass (all edges if the graph is smaller).
  size_t sample_edges = 5000;
  double initial_rho = 0.5;
};

/// EM estimate of rho on an input graph. For a sampled edge {i, j} the
/// transitive likelihood P_TC(j | i) = (1/d_i) sum_{k in Γ(i) ∩ Γ(j)} 1/d_k
/// is computed exactly; the CL likelihood is pi(j) = d_j / 2m. Returns rho
/// in [0, 1].
double FitTclRho(const graph::Graph& g, util::Rng& rng,
                 const TclFitOptions& options = {});

}  // namespace agmdp::models

#include "src/models/tcl.h"

#include <algorithm>

#include "src/models/edge_age_queue.h"
#include "src/util/check.h"
#include "src/util/flat_edge_set.h"
#include "src/util/math_util.h"

namespace agmdp::models {

util::Result<graph::Graph> GenerateTcl(const std::vector<uint32_t>& degrees,
                                       double rho, util::Rng& rng,
                                       const TclOptions& options) {
  if (degrees.empty()) {
    return util::Status::InvalidArgument("TCL: empty degree sequence");
  }
  if (rho < 0.0 || rho > 1.0) {
    return util::Status::InvalidArgument("TCL: rho must be in [0, 1]");
  }
  uint64_t total_degree = 0;
  for (uint32_t d : degrees) total_degree += d;
  const uint64_t m_target = total_degree / 2;
  if (m_target == 0) return graph::Graph(static_cast<graph::NodeId>(degrees.size()));

  auto pi = BuildPiSampler(degrees, /*exclude_degree_one=*/false);
  if (!pi.ok()) return pi.status();

  ChungLuOptions seed_options;
  seed_options.bias_correction = options.seed_bias_correction;
  seed_options.filter = options.filter;
  std::vector<graph::Edge> insertion_order;
  seed_options.insertion_order = &insertion_order;
  auto seed = FastChungLu(degrees, rng, seed_options);
  if (!seed.ok()) return seed.status();
  graph::Graph g = std::move(seed).value();

  EdgeAgeQueue age;
  util::FlatEdgeSet live_seed_edges(insertion_order.size());
  for (const graph::Edge& e : insertion_order) {
    age.Push(e);
    live_seed_edges.Insert(graph::PackEdge(e.u, e.v));
  }

  const uint64_t max_proposals =
      util::SaturatingMul(options.max_proposals_factor, m_target);
  uint64_t proposals = 0;
  while (!live_seed_edges.empty() && proposals < max_proposals) {
    ++proposals;
    auto vi = static_cast<graph::NodeId>(pi.value().Sample(rng));
    graph::NodeId vj;
    if (rng.Bernoulli(rho)) {
      // Transitive step: uniform friend-of-a-friend.
      if (g.Degree(vi) == 0) continue;
      const auto& gamma_i = g.Neighbors(vi);
      graph::NodeId vk = gamma_i[rng.UniformIndex(gamma_i.size())];
      const auto& gamma_k = g.Neighbors(vk);
      vj = gamma_k[rng.UniformIndex(gamma_k.size())];
    } else {
      vj = static_cast<graph::NodeId>(pi.value().Sample(rng));
    }
    if (vj == vi || g.HasEdge(vi, vj)) continue;
    if (!AcceptEdge(options.filter, vi, vj, rng)) continue;

    g.AddEdge(vi, vj);
    age.Push(graph::Edge(vi, vj));

    graph::Edge oldest;
    bool have_oldest = false;
    while (age.PopOldest(&oldest)) {
      if (g.HasEdge(oldest.u, oldest.v)) {
        have_oldest = true;
        break;
      }
    }
    if (!have_oldest) break;  // cannot happen (the new edge is live) but
                              // guards against future invariant changes
    g.RemoveEdge(oldest.u, oldest.v);
    live_seed_edges.Erase(graph::PackEdge(oldest.u, oldest.v));
  }

  if (options.post_process) {
    PostProcessGraph(&g, degrees, pi.value(), rng,
                     options.post_process_options, nullptr);
  }
  return g;
}

double FitTclRho(const graph::Graph& g, util::Rng& rng,
                 const TclFitOptions& options) {
  const uint64_t m = g.num_edges();
  if (m == 0) return 0.0;

  // Collect the sample of edges once (uniform without replacement via
  // shuffle of the canonical edge list when the sample is large, reservoir
  // otherwise is unnecessary at these sizes).
  std::vector<graph::Edge> edges = g.CanonicalEdges();
  if (edges.size() > options.sample_edges) {
    rng.Shuffle(&edges);
    edges.resize(options.sample_edges);
  }

  const double two_m = 2.0 * static_cast<double>(m);
  double rho = std::clamp(options.initial_rho, 1e-6, 1.0 - 1e-6);
  for (int iter = 0; iter < options.em_iterations; ++iter) {
    double responsibility_sum = 0.0;
    size_t counted = 0;
    for (const graph::Edge& e : edges) {
      // Exact transitive likelihood: walk i -> k -> j over common neighbors.
      const graph::NodeId i = e.u, j = e.v;
      const double d_i = g.Degree(i);
      double p_tc = 0.0;
      const auto& smaller =
          g.Degree(i) <= g.Degree(j) ? g.Neighbors(i) : g.Neighbors(j);
      const graph::NodeId other = g.Degree(i) <= g.Degree(j) ? j : i;
      for (graph::NodeId k : smaller) {
        if (k != other && g.HasEdge(k, other)) {
          p_tc += 1.0 / static_cast<double>(g.Degree(k));
        }
      }
      p_tc /= d_i;
      const double p_cl = static_cast<double>(g.Degree(j)) / two_m;
      const double denom = rho * p_tc + (1.0 - rho) * p_cl;
      if (denom <= 0.0) continue;
      responsibility_sum += rho * p_tc / denom;
      ++counted;
    }
    if (counted == 0) return 0.0;
    rho = std::clamp(responsibility_sum / static_cast<double>(counted), 1e-6,
                     1.0 - 1e-6);
  }
  return rho;
}

}  // namespace agmdp::models

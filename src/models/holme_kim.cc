#include "src/models/holme_kim.h"

#include <algorithm>
#include <cmath>

#include "src/graph/clustering.h"
#include "src/graph/triangle_count.h"
#include "src/util/check.h"

namespace agmdp::models {

util::Result<graph::Graph> HolmeKim(graph::NodeId n,
                                    const HolmeKimOptions& options,
                                    util::Rng& rng) {
  const double m_frac = options.edges_per_node;
  if (m_frac < 1.0) {
    return util::Status::InvalidArgument(
        "HolmeKim: edges_per_node must be >= 1");
  }
  const auto m_ceil = static_cast<uint32_t>(std::ceil(m_frac));
  if (n < m_ceil + 2) {
    return util::Status::InvalidArgument("HolmeKim: n too small");
  }
  if (options.triad_probability < 0.0 || options.triad_probability > 1.0) {
    return util::Status::InvalidArgument(
        "HolmeKim: triad_probability must be in [0, 1]");
  }

  graph::Graph g(n);
  // Degree-proportional sampling via the repeated-endpoints trick: every
  // edge appends both endpoints, so a uniform draw from the vector is a
  // preferential-attachment draw.
  std::vector<graph::NodeId> endpoints;
  endpoints.reserve(static_cast<size_t>(2.0 * m_frac * n) + 16);

  // Seed: a path over the first m_ceil + 1 nodes (connected, minimal bias).
  const graph::NodeId seed_nodes = m_ceil + 1;
  for (graph::NodeId v = 0; v + 1 < seed_nodes; ++v) {
    g.AddEdge(v, v + 1);
    endpoints.push_back(v);
    endpoints.push_back(v + 1);
  }

  const auto m_floor = static_cast<uint32_t>(std::floor(m_frac));
  const double extra_edge_prob = m_frac - m_floor;
  // Dispersed mode: m_v = 1 + Geometric(p) with E[m_v] = 1/p = m_frac,
  // capped to keep single-node bursts bounded.
  const double geometric_p = 1.0 / std::max(1.0, m_frac);
  const auto m_cap = static_cast<uint32_t>(std::ceil(8.0 * m_frac));
  for (graph::NodeId v = seed_nodes; v < n; ++v) {
    uint32_t m_v;
    if (options.disperse_edge_counts) {
      m_v = std::min<uint32_t>(
          m_cap, 1 + static_cast<uint32_t>(rng.Geometric(geometric_p)));
    } else {
      m_v = std::max<uint32_t>(
          1, m_floor + (rng.Bernoulli(extra_edge_prob) ? 1 : 0));
    }
    // The degree cap must bound the new node's own burst too, not just its
    // targets' degrees (a dispersed m_v can exceed max_degree).
    if (options.max_degree > 0) m_v = std::min(m_v, options.max_degree);
    graph::NodeId last_target = 0;
    bool have_target = false;
    uint32_t added = 0;
    uint32_t guard = 0;
    while (added < m_v && guard < 200 * m_v) {
      ++guard;
      graph::NodeId target;
      const bool triad =
          have_target && rng.Bernoulli(options.triad_probability);
      if (triad) {
        // Triad step: neighbor of the previous preferential target.
        const auto& nbrs = g.Neighbors(last_target);
        target = nbrs[rng.UniformIndex(nbrs.size())];
      } else {
        target = endpoints[rng.UniformIndex(endpoints.size())];
      }
      if (options.max_degree > 0 && g.Degree(target) >= options.max_degree) {
        continue;
      }
      if (target == v || !g.AddEdge(v, target)) continue;
      endpoints.push_back(v);
      endpoints.push_back(target);
      ++added;
      if (!triad) {
        last_target = target;
        have_target = true;
      }
    }
  }
  return g;
}

double CalibrateTriadProbability(const HolmeKimOptions& base, double target,
                                 graph::NodeId pilot_nodes, util::Rng& rng,
                                 TriadTarget metric) {
  auto measure = [&](double p) {
    HolmeKimOptions options = base;
    options.triad_probability = p;
    auto g = HolmeKim(pilot_nodes, options, rng);
    AGMDP_CHECK(g.ok());
    if (metric == TriadTarget::kAvgClustering) {
      return graph::AverageLocalClustering(g.value());
    }
    return static_cast<double>(graph::CountTriangles(g.value())) /
           static_cast<double>(pilot_nodes);
  };

  // Both statistics increase with p. If even p = 1 undershoots, saturate
  // (the caller's target is outside the model's reachable range).
  if (measure(1.0) < target) return 1.0;
  double lo = 0.0, hi = 1.0;
  // 7 bisection steps pin p to ~1%.
  for (int iter = 0; iter < 7; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (measure(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace agmdp::models

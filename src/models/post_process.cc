#include "src/models/post_process.h"

#include <algorithm>

#include "src/graph/components.h"
#include "src/util/check.h"

namespace agmdp::models {

namespace {

// Deletes an approximately uniform random edge: a degree-weighted endpoint
// via uniform node draws, then a uniform incident edge. (Exact uniformity
// over edges would need an edge index; the paper only asks for "a random
// edge" and the step fires rarely.) Early attempts avoid edges with a
// degree-one endpoint, whose removal would immediately re-orphan a node.
bool DeleteRandomEdge(graph::Graph* g, util::Rng& rng) {
  if (g->num_edges() == 0) return false;
  const graph::NodeId n = g->num_nodes();
  for (int attempt = 0; attempt < 256; ++attempt) {
    auto u = static_cast<graph::NodeId>(rng.UniformIndex(n));
    if (g->Degree(u) == 0) continue;
    const auto& nbrs = g->Neighbors(u);
    graph::NodeId v = nbrs[rng.UniformIndex(nbrs.size())];
    if (attempt < 128 && (g->Degree(u) <= 1 || g->Degree(v) <= 1)) continue;
    return g->RemoveEdge(u, v);
  }
  return false;
}

// Largest-component label and a per-node membership flag.
uint32_t MainComponentLabel(const std::vector<uint32_t>& label,
                            uint32_t num_components) {
  std::vector<uint64_t> sizes(num_components, 0);
  for (uint32_t l : label) ++sizes[l];
  return static_cast<uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

}  // namespace

void PostProcessGraph(graph::Graph* g, const std::vector<uint32_t>& desired,
                      const util::AliasSampler& pi, util::Rng& rng,
                      const PostProcessOptions& options,
                      std::vector<graph::Edge>* added) {
  AGMDP_CHECK(g != nullptr);
  AGMDP_CHECK(desired.size() == g->num_nodes());
  const graph::NodeId n = g->num_nodes();
  if (n < 2) return;

  uint64_t desired_total = 0;
  for (uint32_t d : desired) desired_total += d;
  const uint64_t target_edges = desired_total / 2;

  for (uint32_t round = 0; round < options.max_rounds; ++round) {
    uint32_t num_components = 0;
    std::vector<uint32_t> label = graph::ConnectedComponents(*g,
                                                             &num_components);
    if (num_components <= 1) return;
    const uint32_t main_label = MainComponentLabel(label, num_components);

    for (graph::NodeId vi = 0; vi < n; ++vi) {
      if (label[vi] == main_label) continue;

      // Line 6-8 of Algorithm 2: drop the orphan's existing edges (they can
      // only lead to other orphans).
      while (g->Degree(vi) > 0) {
        g->RemoveEdge(vi, g->Neighbors(vi).front());
      }

      // Lines 9-13: attach vi to main-component nodes with unmet desired
      // degree, sampled from pi.
      const uint32_t want = std::max<uint32_t>(1, desired[vi]);
      for (uint32_t j = 0; j < want; ++j) {
        graph::NodeId attached = vi;
        bool did_add = false;
        for (int attempt = 0; attempt < 1000 && !did_add; ++attempt) {
          auto vk = static_cast<graph::NodeId>(pi.Sample(rng));
          if (vk == vi || label[vk] != main_label) continue;
          if (g->Degree(vk) >= desired[vk]) continue;  // capacity met
          did_add = g->AddEdge(vi, vk);
          if (did_add) attached = vk;
        }
        if (!did_add) {
          // Capacity everywhere is met; relax the capacity constraint so the
          // orphan still joins the main component.
          for (int attempt = 0; attempt < 1000 && !did_add; ++attempt) {
            auto vk = static_cast<graph::NodeId>(pi.Sample(rng));
            if (vk == vi || label[vk] != main_label) continue;
            did_add = g->AddEdge(vi, vk);
            if (did_add) attached = vk;
          }
        }
        if (!did_add) break;  // pi cannot reach the main component; give up
        if (added != nullptr) added->emplace_back(vi, attached);

        // Lines 14-17: keep the total edge budget.
        if (g->num_edges() > target_edges) DeleteRandomEdge(g, rng);
      }
      if (g->Degree(vi) > 0) label[vi] = main_label;
    }
  }

  // Fallback: attach whatever is still disconnected without deleting edges,
  // so the output is guaranteed connected (slight edge surplus; see
  // DESIGN.md deviations).
  uint32_t num_components = 0;
  std::vector<uint32_t> label = graph::ConnectedComponents(*g,
                                                           &num_components);
  if (num_components <= 1) return;
  const uint32_t main_label = MainComponentLabel(label, num_components);
  for (graph::NodeId vi = 0; vi < n; ++vi) {
    if (label[vi] == main_label) continue;
    for (int attempt = 0; attempt < 10000; ++attempt) {
      auto vk = static_cast<graph::NodeId>(pi.Sample(rng));
      if (vk != vi && label[vk] == main_label && g->AddEdge(vi, vk)) {
        if (added != nullptr) added->emplace_back(vi, vk);
        label[vi] = main_label;
        break;
      }
    }
  }
}

}  // namespace agmdp::models

#include "src/models/erdos_renyi.h"

#include <cmath>

namespace agmdp::models {

graph::Graph ErdosRenyiGnp(graph::NodeId n, double p, util::Rng& rng) {
  graph::Graph g(n);
  if (p <= 0.0 || n < 2) return g;
  if (p >= 1.0) {
    for (graph::NodeId u = 0; u < n; ++u) {
      for (graph::NodeId v = u + 1; v < n; ++v) g.AddEdge(u, v);
    }
    return g;
  }
  // Batagelj-Brandes skipping: walk the strictly-upper-triangular pair list
  // with geometric jumps.
  const double log_q = std::log(1.0 - p);
  int64_t v = 1, w = -1;
  while (v < static_cast<int64_t>(n)) {
    double u = rng.UniformDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    w += 1 + static_cast<int64_t>(std::floor(std::log(u) / log_q));
    while (w >= v && v < static_cast<int64_t>(n)) {
      w -= v;
      ++v;
    }
    if (v < static_cast<int64_t>(n)) {
      g.AddEdge(static_cast<graph::NodeId>(w), static_cast<graph::NodeId>(v));
    }
  }
  return g;
}

graph::Graph ErdosRenyiGnm(graph::NodeId n, uint64_t m, util::Rng& rng) {
  graph::Graph g(n);
  if (n < 2) return g;
  const uint64_t max_edges =
      static_cast<uint64_t>(n) * (n - 1) / 2;
  if (m > max_edges) m = max_edges;
  while (g.num_edges() < m) {
    auto u = static_cast<graph::NodeId>(rng.UniformIndex(n));
    auto v = static_cast<graph::NodeId>(rng.UniformIndex(n));
    g.AddEdge(u, v);  // rejects self-loops and duplicates internally
  }
  return g;
}

}  // namespace agmdp::models

// Orphan-node post-processing — Algorithm 2 of the paper.
//
// CL-family models leave nodes disconnected from the main component
// ("orphaned"), especially the abundant degree-one nodes. Post-processing
// deletes each orphan's edges and rewires it into the main component against
// nodes whose desired degree is not yet met, keeping the total edge count at
// the target by deleting a (pseudo-)random edge whenever the budget is
// exceeded.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/alias_sampler.h"
#include "src/util/rng.h"

namespace agmdp::models {

struct PostProcessOptions {
  /// Outer rounds before giving up on the "delete a random edge" dance and
  /// attaching remaining orphans without deletions (guaranteeing
  /// connectivity at the cost of a few extra edges; documented deviation).
  uint32_t max_rounds = 50;
};

/// Rewires orphaned nodes into the main connected component. `desired` is
/// the degree sequence of the original input graph (per synthetic node id);
/// `pi` samples attachment targets with probability proportional to desired
/// degree. Mutates `g` in place. If `added` is non-null it receives the
/// edges inserted by post-processing (in insertion order), so callers that
/// track edge age can register them.
void PostProcessGraph(graph::Graph* g, const std::vector<uint32_t>& desired,
                      const util::AliasSampler& pi, util::Rng& rng,
                      const PostProcessOptions& options = {},
                      std::vector<graph::Edge>* added = nullptr);

}  // namespace agmdp::models

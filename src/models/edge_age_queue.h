// Edge age bookkeeping for the rewiring models (TCL, TriCycLe).
//
// Both models repeatedly delete the *oldest* edge in the evolving graph, and
// TriCycLe's undo step re-inserts a deleted edge as the *youngest* (the
// paper stresses this detail — without it Algorithm 1 can live-lock). The
// queue uses lazy invalidation: each (edge, sequence) entry is valid only if
// the edge's latest sequence number still matches, so deletions and undo
// re-insertions are O(1).
#pragma once

#include <cstdint>
#include <deque>

#include "src/graph/graph.h"
#include "src/util/flat_edge_set.h"

namespace agmdp::models {

/// \brief FIFO of edges by insertion age with O(1) touch/invalidate.
class EdgeAgeQueue {
 public:
  /// Registers `e` as the youngest edge (fresh insertion or undo).
  void Push(const graph::Edge& e) {
    const uint64_t seq = ++counter_;
    latest_.Put(graph::PackEdge(e.u, e.v), seq);
    queue_.push_back({e, seq});
  }

  /// Marks `e` as no longer tracked (its queue entry becomes stale).
  void Invalidate(const graph::Edge& e) {
    latest_.Erase(graph::PackEdge(e.u, e.v));
  }

  /// Pops and returns the oldest valid edge; false if none remain.
  bool PopOldest(graph::Edge* out) {
    while (!queue_.empty()) {
      const Entry entry = queue_.front();
      queue_.pop_front();
      const uint64_t key = graph::PackEdge(entry.edge.u, entry.edge.v);
      const uint64_t* seq = latest_.Find(key);
      if (seq != nullptr && *seq == entry.seq) {
        latest_.Erase(key);
        *out = entry.edge;
        return true;
      }
    }
    return false;
  }

  /// Number of live (valid) edges tracked.
  size_t live_size() const { return latest_.size(); }

 private:
  struct Entry {
    graph::Edge edge;
    uint64_t seq;
  };

  std::deque<Entry> queue_;
  util::FlatEdgeMap latest_;  // flat map: PopOldest/Push run once per
                              // rewiring proposal in the TriCycLe/TCL loops
  uint64_t counter_ = 0;
};

}  // namespace agmdp::models

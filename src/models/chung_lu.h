// Chung-Lu random graphs via the Fast Chung-Lu (FCL) sampler, with optional
// bias correction (the cFCL variant the paper uses; Section 3.3).
//
// FCL samples both endpoints of each edge from the degree-proportional pi
// distribution and rejects self-loops and duplicates. Rejection hits
// high-degree nodes hardest (their proposals collide more often), biasing
// realized degrees low; cFCL compensates with one calibration pass that
// reweights pi by the observed shortfall (DESIGN.md substitution #5).
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/models/edge_filter.h"
#include "src/util/alias_sampler.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::models {

/// Builds the pi distribution (probability proportional to degree). Nodes of
/// degree one get weight zero when `exclude_degree_one` (TriCycLe's orphan
/// extension: degree-one nodes cannot be in triangles and are wired up in
/// post-processing instead). Fails if all weights are zero.
util::Result<util::AliasSampler> BuildPiSampler(
    const std::vector<uint32_t>& degrees, bool exclude_degree_one);

struct ChungLuOptions {
  /// cFCL bias-correction pass.
  bool bias_correction = true;
  /// Target edge count; 0 means sum(degrees) / 2.
  uint64_t target_edges = 0;
  /// Give up after this many proposals per requested edge (guards against
  /// stalls when an acceptance filter suppresses nearly every pair).
  uint64_t max_proposals_per_edge = 200;
  /// Optional acceptance filter (AGM attribute correlations).
  EdgeFilter filter;
  /// If non-null, receives the edges of the returned graph in insertion
  /// order (TriCycLe/TCL seed their edge-age queues from this).
  std::vector<graph::Edge>* insertion_order = nullptr;
};

/// Generates an FCL graph matching the expected degree sequence. The result
/// may have fewer edges than requested if the proposal budget runs out; this
/// is reported, not an error (matching the accept/reject design of AGM).
util::Result<graph::Graph> FastChungLu(const std::vector<uint32_t>& degrees,
                                       util::Rng& rng,
                                       const ChungLuOptions& options = {});

}  // namespace agmdp::models

// Holme-Kim "powerlaw cluster" generator — the substrate for the synthetic
// dataset stand-ins (DESIGN.md substitution #1).
//
// Barabási-Albert preferential attachment where, after each preferential
// edge, a triad-formation step connects the incoming node to a random
// neighbor of the node it just attached to with probability
// triad_probability. Produces heavy-tailed degrees with tunable clustering
// and is connected by construction; deliberately a different model family
// than TriCycLe/TCL, so dataset generation does not share a code path with
// the models under evaluation.
#pragma once

#include <cstdint>

#include "src/graph/graph.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::models {

struct HolmeKimOptions {
  /// Mean number of edges each incoming node brings (m in the BA
  /// literature); the realized total edge count is ~n * edges_per_node.
  double edges_per_node = 3.0;
  /// Probability of the triad-formation step after each preferential edge.
  double triad_probability = 0.5;
  /// When true (default), the per-node edge count is 1 + Geometric with the
  /// requested mean instead of a constant. Real social networks have a
  /// large low-degree population; a constant m would put the minimum degree
  /// at m and distort the low end of the degree distribution.
  bool disperse_edge_counts = true;
  /// Maximum degree (0 = unlimited). Preferential attachment left unchecked
  /// grows hubs past what real crawls show (Table 6's dmax column), and
  /// hub-heavy graphs have triangles that even degree-only models reproduce
  /// "for free" — capping keeps the clustering local, where it belongs.
  uint32_t max_degree = 0;
};

/// Generates a Holme-Kim graph with n nodes. Fails if n is too small for
/// edges_per_node or the options are out of range.
util::Result<graph::Graph> HolmeKim(graph::NodeId n,
                                    const HolmeKimOptions& options,
                                    util::Rng& rng);

/// Which statistic CalibrateTriadProbability drives toward its target.
enum class TriadTarget { kAvgClustering, kTrianglesPerNode };

/// Calibrates triad_probability by bisection so that graphs generated with
/// `base`'s other settings approach `target` (average local clustering or
/// triangles per node), using pilot runs of `pilot_nodes` nodes. Returns
/// the calibrated probability (saturates when the target is outside the
/// model's reachable range).
double CalibrateTriadProbability(const HolmeKimOptions& base, double target,
                                 graph::NodeId pilot_nodes, util::Rng& rng,
                                 TriadTarget metric = TriadTarget::kAvgClustering);

}  // namespace agmdp::models

#include "src/datasets/homophily.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/check.h"

namespace agmdp::datasets {

namespace {

// Largest-remainder apportionment of n slots to the masses in theta.
std::vector<uint64_t> Apportion(const std::vector<double>& theta, uint64_t n) {
  const size_t k = theta.size();
  std::vector<uint64_t> counts(k, 0);
  std::vector<std::pair<double, size_t>> remainders(k);
  uint64_t assigned = 0;
  for (size_t i = 0; i < k; ++i) {
    const double exact = theta[i] * static_cast<double>(n);
    counts[i] = static_cast<uint64_t>(std::floor(exact));
    assigned += counts[i];
    remainders[i] = {exact - std::floor(exact), i};
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (size_t i = 0; assigned < n && i < k; ++i, ++assigned) {
    ++counts[remainders[i].second];
  }
  return counts;
}

// Net change in same-configuration edges if u and v swapped attributes.
int64_t SwapGain(const graph::AttributedGraph& g, graph::NodeId u,
                 graph::NodeId v) {
  const graph::AttrConfig au = g.attribute(u), av = g.attribute(v);
  int64_t gain = 0;
  for (graph::NodeId w : g.structure().Neighbors(u)) {
    if (w == v) continue;  // the u-v edge itself is invariant under swap
    const graph::AttrConfig aw = g.attribute(w);
    gain += (aw == av) - (aw == au);
  }
  for (graph::NodeId w : g.structure().Neighbors(v)) {
    if (w == u) continue;
    const graph::AttrConfig aw = g.attribute(w);
    gain += (aw == au) - (aw == av);
  }
  return gain;
}

}  // namespace

double SameConfigEdgeFraction(const graph::AttributedGraph& g) {
  if (g.num_edges() == 0) return 0.0;
  uint64_t same = 0;
  g.structure().ForEachEdge([&](graph::NodeId u, graph::NodeId v) {
    if (g.attribute(u) == g.attribute(v)) ++same;
  });
  return static_cast<double>(same) / static_cast<double>(g.num_edges());
}

util::Status AssignHomophilousAttributes(graph::AttributedGraph* g,
                                         const std::vector<double>& theta_x,
                                         const HomophilyOptions& options,
                                         util::Rng& rng) {
  AGMDP_CHECK(g != nullptr);
  if (theta_x.size() != graph::NumNodeConfigs(g->num_attributes())) {
    return util::Status::InvalidArgument(
        "AssignHomophilousAttributes: theta_x dimension mismatch");
  }
  const graph::NodeId n = g->num_nodes();
  if (n == 0) return util::Status::OK();

  // Deal out configurations matching the marginal exactly, then shuffle.
  std::vector<uint64_t> counts = Apportion(theta_x, n);
  std::vector<graph::AttrConfig> attrs;
  attrs.reserve(n);
  for (size_t config = 0; config < counts.size(); ++config) {
    attrs.insert(attrs.end(), counts[config],
                 static_cast<graph::AttrConfig>(config));
  }
  rng.Shuffle(&attrs);
  if (auto st = g->SetAttributes(std::move(attrs)); !st.ok()) return st;

  const uint64_t max_swaps =
      options.max_swaps > 0 ? options.max_swaps : 20ull * n;
  uint64_t same = static_cast<uint64_t>(
      SameConfigEdgeFraction(*g) * static_cast<double>(g->num_edges()) + 0.5);
  const auto target = static_cast<uint64_t>(options.target_same_fraction *
                                            static_cast<double>(g->num_edges()));
  for (uint64_t swap = 0; swap < max_swaps && same < target; ++swap) {
    const auto u = static_cast<graph::NodeId>(rng.UniformIndex(n));
    const auto v = static_cast<graph::NodeId>(rng.UniformIndex(n));
    if (u == v || g->attribute(u) == g->attribute(v)) continue;
    const int64_t gain = SwapGain(*g, u, v);
    if (gain > 0) {
      const graph::AttrConfig au = g->attribute(u);
      g->set_attribute(u, g->attribute(v));
      g->set_attribute(v, au);
      same += static_cast<uint64_t>(gain);
    }
  }
  return util::Status::OK();
}

}  // namespace agmdp::datasets

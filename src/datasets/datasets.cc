#include "src/datasets/datasets.h"

#include <algorithm>
#include <cmath>

#include "src/datasets/homophily.h"
#include "src/models/holme_kim.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace agmdp::datasets {

namespace {

std::vector<DatasetSpec> BuildSpecs() {
  std::vector<DatasetSpec> specs(4);

  // Table 6 statistics. theta_x marginals are plausible choices for the
  // attributes the paper derived (two most-popular artists / products,
  // sex x is-living, sex x age<=30); the exact crawls are unavailable.
  DatasetSpec& lastfm = specs[0];
  lastfm.name = "lastfm";
  lastfm.nodes = 1843;
  lastfm.edges = 12668;
  lastfm.max_degree = 119;
  lastfm.avg_degree = 6.9;
  lastfm.triangles = 19651;
  lastfm.avg_clustering = 0.183;
  lastfm.theta_x = {0.52, 0.22, 0.16, 0.10};  // listenedToArtist{A,B}
  lastfm.homophily = 0.52;
  lastfm.table_epsilons = {std::log(3.0), std::log(2.0), 0.3, 0.2};

  DatasetSpec& petster = specs[1];
  petster.name = "petster";
  petster.nodes = 1788;
  petster.edges = 12476;
  petster.max_degree = 272;
  petster.avg_degree = 7.0;
  petster.triangles = 16741;
  petster.avg_clustering = 0.143;
  petster.theta_x = {0.30, 0.28, 0.24, 0.18};  // sex x is-living
  petster.homophily = 0.45;
  petster.table_epsilons = {std::log(3.0), std::log(2.0), 0.3, 0.2};

  DatasetSpec& epinions = specs[2];
  epinions.name = "epinions";
  epinions.nodes = 26427;
  epinions.edges = 104075;
  epinions.max_degree = 625;
  epinions.avg_degree = 3.9;
  epinions.triangles = 231645;
  epinions.avg_clustering = 0.138;
  epinions.theta_x = {0.62, 0.18, 0.13, 0.07};  // ratedProduct{A,B}
  epinions.homophily = 0.60;
  epinions.table_epsilons = {std::log(3.0), std::log(2.0), 0.3, 0.2};

  DatasetSpec& pokec = specs[3];
  pokec.name = "pokec";
  pokec.nodes = 592627;
  pokec.edges = 3725424;
  pokec.max_degree = 1274;
  pokec.avg_degree = 6.3;
  pokec.triangles = 2492216;
  pokec.avg_clustering = 0.104;
  pokec.theta_x = {0.28, 0.27, 0.24, 0.21};  // sex x age<=30
  pokec.homophily = 0.48;
  pokec.table_epsilons = {0.2, 0.1, 0.05, 0.01};

  return specs;
}

const std::vector<DatasetSpec>& Specs() {
  static const std::vector<DatasetSpec> specs = BuildSpecs();
  return specs;
}

}  // namespace

const DatasetSpec& PaperSpec(DatasetId id) {
  return Specs()[static_cast<size_t>(id)];
}

std::vector<DatasetId> AllDatasets() {
  return {DatasetId::kLastFm, DatasetId::kPetster, DatasetId::kEpinions,
          DatasetId::kPokec};
}

DatasetId DatasetByName(const std::string& name) {
  for (DatasetId id : AllDatasets()) {
    if (PaperSpec(id).name == name) return id;
  }
  AGMDP_CHECK_MSG(false, ("unknown dataset: " + name).c_str());
  return DatasetId::kLastFm;  // unreachable
}

util::Result<graph::AttributedGraph> GenerateDataset(DatasetId id,
                                                     double scale,
                                                     uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    return util::Status::InvalidArgument(
        "GenerateDataset: scale must be in (0, 1]");
  }
  const DatasetSpec& spec = PaperSpec(id);
  const auto n = static_cast<graph::NodeId>(std::max<double>(
      200.0, std::lround(scale * static_cast<double>(spec.nodes))));

  util::Rng rng(seed ^ (static_cast<uint64_t>(id) << 32));

  models::HolmeKimOptions options;
  // Table 6 reports davg = m/n (its m and davg columns agree only under
  // that convention), so each incoming node brings m/n edges on average.
  options.edges_per_node =
      std::max(1.0, static_cast<double>(spec.edges) /
                        static_cast<double>(spec.nodes));
  // Cap hubs at the crawl's published maximum degree (scaled down with the
  // graph, since hub size grows with n under preferential attachment).
  options.max_degree = std::max<uint32_t>(
      16, static_cast<uint32_t>(std::lround(spec.max_degree *
                                            std::min(1.0, 2.0 * scale))));
  // Calibrate the triad probability against the published triangle density:
  // the share of triangles *not* implied by the degree sequence is what
  // separates TriCycLe/TCL from degree-only models, so it is the statistic
  // to preserve. Holme-Kim concentrates its triads on incoming (low-degree)
  // nodes, so chasing a high triangle target can overshoot the local
  // clustering; the clustering-calibrated probability at 2x the published
  // C̄ serves as an upper clamp. (Pilot statistics are per-node and the cap
  // and edge budget are size-independent, so pilots transfer to full size.)
  const double target_triangles_per_node =
      static_cast<double>(spec.triangles) / static_cast<double>(spec.nodes);
  const graph::NodeId pilot =
      std::min<graph::NodeId>(n, std::max<graph::NodeId>(2000, n / 10));
  util::Rng pilot_rng = rng.Fork();
  const double p_triangles = models::CalibrateTriadProbability(
      options, target_triangles_per_node, pilot, pilot_rng,
      models::TriadTarget::kTrianglesPerNode);
  const double p_clustering_cap = models::CalibrateTriadProbability(
      options, 2.0 * spec.avg_clustering, pilot, pilot_rng,
      models::TriadTarget::kAvgClustering);
  options.triad_probability = std::min(p_triangles, p_clustering_cap);

  auto structure = models::HolmeKim(n, options, rng);
  if (!structure.ok()) return structure.status();

  graph::AttributedGraph g(std::move(structure).value(), spec.num_attributes);
  HomophilyOptions homophily;
  homophily.target_same_fraction = spec.homophily;
  if (auto st = AssignHomophilousAttributes(&g, spec.theta_x, homophily, rng);
      !st.ok()) {
    return st;
  }
  return g;
}

}  // namespace agmdp::datasets

// Synthetic stand-ins for the paper's four evaluation datasets (Appendix A,
// Table 6). The public crawls are unavailable offline, so each dataset is
// regenerated as a Holme-Kim powerlaw-cluster graph calibrated to the
// published statistics, with homophilous binary attributes
// (DESIGN.md substitution #1). `scale` shrinks node counts proportionally
// (1.0 = paper size); all generation is deterministic in `seed`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/attributed_graph.h"
#include "src/util/status.h"

namespace agmdp::datasets {

enum class DatasetId { kLastFm, kPetster, kEpinions, kPokec };

/// The published Table-6 statistics plus our attribute targets.
struct DatasetSpec {
  std::string name;
  graph::NodeId nodes = 0;
  uint64_t edges = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0.0;
  uint64_t triangles = 0;
  double avg_clustering = 0.0;
  int num_attributes = 2;
  /// Target marginal for the 2^w attribute configurations.
  std::vector<double> theta_x;
  /// Target fraction of same-configuration edges (homophily strength).
  double homophily = 0.55;
  /// Epsilon grid used in the paper's Tables 2-5 for this dataset.
  std::vector<double> table_epsilons;
};

const DatasetSpec& PaperSpec(DatasetId id);
std::vector<DatasetId> AllDatasets();
DatasetId DatasetByName(const std::string& name);  // aborts on unknown name

/// Generates the stand-in at `scale` (node count = round(scale * n_paper),
/// min 200). The triad probability is calibrated against the paper's
/// average clustering on a pilot graph; attributes are assigned with
/// homophily. Deterministic in `seed`.
util::Result<graph::AttributedGraph> GenerateDataset(DatasetId id,
                                                     double scale,
                                                     uint64_t seed);

}  // namespace agmdp::datasets

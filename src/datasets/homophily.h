// Homophilous attribute assignment for the synthetic dataset stand-ins.
//
// Attribute configurations are dealt out to match the target ΘX marginal
// exactly (largest-remainder apportionment), then pairs of nodes with
// different configurations are greedily swapped whenever a swap increases
// the fraction of same-configuration edges. Swapping preserves the marginal
// exactly while creating the edge-attribute correlation ("birds of a
// feather") that ΘF is supposed to capture.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/attributed_graph.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::datasets {

struct HomophilyOptions {
  /// Stop once this fraction of edges connects same-configuration
  /// endpoints (if reachable).
  double target_same_fraction = 0.55;
  /// Swap attempts; 0 means 20 * n.
  uint64_t max_swaps = 0;
};

/// Assigns attributes to g's nodes with marginal theta_x and homophily.
/// Fails if theta_x does not match g's attribute dimension.
util::Status AssignHomophilousAttributes(graph::AttributedGraph* g,
                                         const std::vector<double>& theta_x,
                                         const HomophilyOptions& options,
                                         util::Rng& rng);

/// Fraction of edges whose endpoints share an attribute configuration
/// (diagnostic used by tests and the dataset report).
double SameConfigEdgeFraction(const graph::AttributedGraph& g);

}  // namespace agmdp::datasets

// Minimal blocking client for the `agmdp serve` protocol. One TCP
// connection, newline-delimited JSON lines; used by the CLI's client mode,
// the server tests and the serving benchmark.
//
// Not thread-safe: one Client per thread. Responses on a connection may be
// answered out of request order when the server batches, so pipelined
// callers (Send() several, then ReadResponse() several) must match the
// echoed `id` themselves; the lock-step Call() needs no matching.
#pragma once

#include <cstdint>
#include <string>

#include "src/server/protocol.h"
#include "src/util/status.h"

namespace agmdp::server {

class Client {
 public:
  /// Connects to host:port (IPv4 dotted quad, e.g. "127.0.0.1").
  static util::Result<Client> Connect(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request line.
  util::Status Send(const Request& request);

  /// Blocks for the next response line. Fails with Unavailable when the
  /// server closes the connection, InvalidArgument on a garbled line.
  util::Result<Response> ReadResponse();

  /// Send + ReadResponse, verifying the echoed id. The transport-level
  /// convenience; the *response* may still carry an error status.
  util::Result<Response> Call(const Request& request);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  /// Bytes received but not yet consumed as a full line.
  std::string pending_;
};

}  // namespace agmdp::server

// Minimal blocking client for the `agmdp serve` protocol. One TCP
// connection, newline-delimited JSON lines; used by the CLI's client mode,
// the server tests and the serving benchmark.
//
// Not thread-safe: one Client per thread. Responses on a connection may be
// answered out of request order when the server batches, so pipelined
// callers (Send() several, then ReadResponse() several) must match the
// echoed `id` themselves; the lock-step Call() needs no matching.
#pragma once

#include <cstdint>
#include <string>

#include "src/server/protocol.h"
#include "src/util/status.h"

namespace agmdp::server {

struct ClientOptions {
  /// Socket-level bound on connect(); <= 0 blocks indefinitely.
  int connect_timeout_ms = 5'000;
  /// Per-send / per-recv deadline. A server that stops answering turns
  /// into a typed DeadlineExceeded instead of a parked thread. <= 0
  /// blocks indefinitely.
  int io_timeout_ms = 30'000;
};

/// Jittered exponential backoff for CallWithRetry. Every protocol op is
/// idempotent — graphs are pure functions of (seed, sequence) and ledger
/// charges are idempotent per release key — so retrying a request whose
/// response was lost is always safe.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retry).
  int max_attempts = 3;
  int initial_backoff_ms = 50;
  double backoff_multiplier = 2.0;
  int max_backoff_ms = 2'000;
  /// Seed of the deterministic jitter stream (util::Rng) — tests pin it.
  uint64_t jitter_seed = 1;
};

class Client {
 public:
  /// Connects to host:port (IPv4 dotted quad, e.g. "127.0.0.1").
  static util::Result<Client> Connect(const std::string& host, int port);
  static util::Result<Client> Connect(const std::string& host, int port,
                                      const ClientOptions& options);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request line.
  util::Status Send(const Request& request);

  /// Blocks for the next response line. Fails with Unavailable when the
  /// server closes the connection, DeadlineExceeded when io_timeout_ms
  /// passes without one, InvalidArgument on a garbled line.
  util::Result<Response> ReadResponse();

  /// Send + ReadResponse, verifying the echoed id. The transport-level
  /// convenience; the *response* may still carry an error status.
  util::Result<Response> Call(const Request& request);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  /// Bytes received but not yet consumed as a full line.
  std::string pending_;
};

/// One lock-step request with reconnect + jittered-exponential-backoff
/// retry on transport failures (Unavailable / DeadlineExceeded). Each
/// attempt uses a fresh connection, so a half-dead socket from a previous
/// attempt can never swallow the retry. Application-level errors in the
/// response (out of budget, unknown name, ...) are returned immediately —
/// they are answers, not transport failures.
util::Result<Response> CallWithRetry(const std::string& host, int port,
                                     const Request& request,
                                     const ClientOptions& options = {},
                                     const RetryPolicy& policy = {});

}  // namespace agmdp::server

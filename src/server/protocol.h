// Wire protocol of the `agmdp serve` daemon: newline-delimited JSON over a
// plain TCP stream, one request object per line, one response object per
// line (correlated by the echoed `id`, so responses may arrive out of
// order when the server batches or reorders work).
//
// Requests (fields beyond `op`/`id` are op-specific):
//   {"op":"load","id":1,"tenant":"t","name":"m","artifact":"r.json"}
//   {"op":"load","id":1,"tenant":"t","name":"m","dataset":"lastfm"}
//     (registry-resolved: the server looks (dataset, name) up in its
//      ArtifactRegistry instead of reading an artifact file)
//   {"op":"sample","id":2,"tenant":"t","name":"m","seed":7,"sequence":0,
//    "count":2,"out":"prefix"}
//   {"op":"pin","id":3,"name":"m"}       {"op":"unpin","id":4,"name":"m"}
//   {"op":"unload","id":5,"name":"m"}
//   {"op":"stats","id":6}
//   {"op":"shutdown","id":7}
// Responses:
//   {"id":2,"ok":true,"graphs":[{"nodes":100,"edges":512,
//    "checksum":"12345","path":"prefix_0"}]}
//   {"id":1,"ok":false,"code":"ResourceExhausted","error":"..."}
//
// Everything arriving on the socket is untrusted: requests are parsed
// under hard byte/depth caps (util::JsonLimits) and every violation is a
// typed InvalidArgument response, never a crash. uint64 values (seeds,
// sequence numbers, checksums) travel as decimal strings or exact JSON
// integers; checksums always as strings (they exceed 2^53).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/attributed_graph.h"
#include "src/util/json.h"
#include "src/util/status.h"

namespace agmdp::server {

/// Bump when the wire layout changes incompatibly.
inline constexpr int kProtocolVersion = 1;

/// Hard caps on one request line from the socket — far above any
/// legitimate request (the largest op is a flat object of short strings)
/// and far below anything that could pressure the parser.
inline constexpr size_t kMaxRequestBytes = 64 * 1024;
inline constexpr int kMaxRequestDepth = 8;

enum class RequestOp {
  kLoad,      // build + admit an engine from an artifact file
  kSample,    // serve `count` graphs from a cached engine
  kPin,       // make a cache entry non-evictable
  kUnpin,     // make it evictable again
  kUnload,    // drop an unpinned entry
  kStats,     // server / cache / ledger counters
  kShutdown,  // clean daemon shutdown
};

const char* RequestOpName(RequestOp op);

/// \brief One parsed client request.
struct Request {
  RequestOp op = RequestOp::kStats;
  /// Client correlation id, echoed verbatim in the response.
  uint64_t id = 0;
  /// Tenant whose epsilon ledger the request charges (load/sample).
  std::string tenant;
  /// Cache entry name (every op except stats/shutdown).
  std::string name;
  /// Artifact file path (load only; exclusive with `dataset`).
  std::string artifact;
  /// Registry dataset to resolve (dataset, name) from (load only;
  /// exclusive with `artifact` — needs a daemon started with a registry).
  std::string dataset;
  /// Sampling request (sample only): graphs (seed, sequence) ..
  /// (seed, sequence + count - 1), exactly ReleaseEngine::SampleMany.
  uint64_t seed = 1;
  uint64_t sequence = 0;
  int count = 1;
  /// Acceptance refinements per sample; -1 = engine default.
  int refine_iterations = -1;
  /// Optional server-side output prefix; when set the server writes each
  /// sampled graph via graph::WriteAttributedGraph and returns the paths.
  std::string out;
};

/// Parses one request line under the protocol caps. Any malformed input —
/// bad JSON, adversarial nesting, oversized line, unknown op, wrong field
/// type, negative count — is a typed InvalidArgument.
util::Result<Request> ParseRequest(const std::string& line);

/// Serializes a request as one line (no trailing newline) — the client
/// side of the protocol.
std::string SerializeRequest(const Request& request);

/// \brief Summary of one served graph.
struct GraphSummary {
  uint32_t nodes = 0;
  uint64_t edges = 0;
  /// Stable FNV-1a fingerprint of the graph (GraphChecksum below) — lets a
  /// client verify determinism without shipping the edge list.
  uint64_t checksum = 0;
  /// Server-side path prefix the graph was written to; empty when the
  /// request had no `out`.
  std::string path;
};

/// \brief One server response.
struct Response {
  uint64_t id = 0;
  util::Status status;
  /// sample: one entry per served graph, in sequence order.
  std::vector<GraphSummary> graphs;
  /// stats (and piggybacked on load): counter name -> value.
  std::vector<std::pair<std::string, double>> stats;
};

/// Serializes a response as one line (no trailing newline).
std::string SerializeResponse(const Response& response);

/// Parses a response line — the client side. Accepts any line the server
/// emits; the embedded status round-trips code and message.
util::Result<Response> ParseResponse(const std::string& line);

/// FNV-1a over the graph dimensions, canonical edge list and attribute
/// vector — a stable fingerprint of a released graph, identical across
/// processes and machines for identical graphs. (The same checksum the
/// golden-release pipeline tests use.)
uint64_t GraphChecksum(const graph::AttributedGraph& g);

}  // namespace agmdp::server

// Per-tenant epsilon accounting for the serving daemon.
//
// The privacy spend of a release happened at fit time and travels inside
// the ReleaseArtifact (its accountant ledger and epsilon_spent). What the
// *server* must enforce is the aggregate: a tenant who can name many
// artifacts must not accumulate more total epsilon than their cap across
// requests, across cached engines, and across cache evictions — the
// per-user budget semantics of personalized-DP release systems (Li et al.,
// arXiv:1709.09454).
//
// Semantics:
//   * Each tenant has a budget (per-tenant override or the default).
//   * Charge(tenant, release_key, epsilon) debits the tenant ONCE per
//     release key (ReleaseArtifactReleaseKey): sampling the same release a
//     thousand times, or re-loading it after an eviction, is free — the
//     paper's Theorem 2 post-processing guarantee. A *different* release
//     is a new debit.
//   * A debit that would exceed the budget fails with a typed
//     ResourceExhausted and leaves the ledger unchanged; other tenants are
//     unaffected.
//
// Thread-safe: check-and-debit is atomic under one mutex, so concurrent
// requests cannot race a tenant past their cap.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace agmdp::server {

struct TenantLedgerOptions {
  /// Budget for tenants without an explicit entry. <= 0 means unknown
  /// tenants are rejected outright.
  double default_budget = 0.0;
  /// Per-tenant budget overrides.
  std::vector<std::pair<std::string, double>> budgets;
};

/// \brief Aggregated epsilon spend per tenant, enforced at request time.
class TenantLedger {
 public:
  explicit TenantLedger(TenantLedgerOptions options);

  /// Atomically debits `epsilon` against `tenant` for `release_key`,
  /// unless that key was already charged to this tenant (then a no-op
  /// success). Fails with ResourceExhausted when the debit would exceed
  /// the tenant's budget, InvalidArgument on an empty tenant name, and
  /// ResourceExhausted naming the tenant when unknown tenants are
  /// rejected. When `newly_charged` is non-null it reports whether this
  /// call actually debited (false for the idempotent re-charge) — the
  /// server journals a durable registry record only for fresh debits.
  util::Status Charge(const std::string& tenant, uint64_t release_key,
                      double epsilon, bool* newly_charged = nullptr);

  /// Replays a durable charge at startup, bypassing the budget check: the
  /// registry already acknowledged this spend in a previous process life,
  /// so it must be reflected even if budgets were lowered since (the
  /// over-budget tenant is then simply unable to load anything new).
  void Restore(const std::string& tenant, uint64_t release_key,
               double epsilon);

  /// Total epsilon debited to the tenant so far (0 for unknown tenants).
  double Spent(const std::string& tenant) const;
  /// The tenant's budget (the default for tenants without an override).
  double Budget(const std::string& tenant) const;

  /// (tenant, spent, budget) rows for the stats op, sorted by tenant.
  struct TenantRow {
    std::string tenant;
    double spent = 0.0;
    double budget = 0.0;
  };
  std::vector<TenantRow> Rows() const;

 private:
  struct TenantState {
    double budget = 0.0;
    double spent = 0.0;
    /// Release keys already charged — the idempotence set.
    std::vector<uint64_t> charged;
  };

  /// Finds or creates the tenant's state (callers hold mu_).
  TenantState* Resolve(const std::string& tenant);

  TenantLedgerOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, TenantState> tenants_;
};

}  // namespace agmdp::server

#include "src/server/tenant_ledger.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace agmdp::server {

TenantLedger::TenantLedger(TenantLedgerOptions options)
    : options_(std::move(options)) {
  for (const auto& [tenant, budget] : options_.budgets) {
    tenants_[tenant].budget = budget;
  }
}

TenantLedger::TenantState* TenantLedger::Resolve(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return &it->second;
  if (options_.default_budget <= 0.0) return nullptr;
  TenantState& state = tenants_[tenant];
  state.budget = options_.default_budget;
  return &state;
}

util::Status TenantLedger::Charge(const std::string& tenant,
                                  uint64_t release_key, double epsilon,
                                  bool* newly_charged) {
  if (newly_charged != nullptr) *newly_charged = false;
  if (tenant.empty()) {
    return util::Status::InvalidArgument(
        "tenant ledger: request is missing a tenant");
  }
  if (epsilon < 0.0) {
    return util::Status::InvalidArgument(
        "tenant ledger: negative epsilon charge");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  TenantState* state = Resolve(tenant);
  if (state == nullptr) {
    return util::Status::ResourceExhausted(
        "tenant ledger: tenant '" + tenant +
        "' has no budget and the server allows no default");
  }
  if (std::find(state->charged.begin(), state->charged.end(), release_key) !=
      state->charged.end()) {
    // Already paid for this release: sampling it again is post-processing.
    return util::Status();
  }
  if (state->spent + epsilon > state->budget) {
    std::ostringstream msg;
    msg << "tenant ledger: tenant '" << tenant << "' would spend "
        << state->spent + epsilon << " of budget " << state->budget
        << " (spent " << state->spent << ", release costs " << epsilon << ")";
    return util::Status::ResourceExhausted(msg.str());
  }
  state->spent += epsilon;
  state->charged.push_back(release_key);
  if (newly_charged != nullptr) *newly_charged = true;
  return util::Status();
}

void TenantLedger::Restore(const std::string& tenant, uint64_t release_key,
                           double epsilon) {
  if (tenant.empty() || epsilon < 0.0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  TenantState* state;
  if (it != tenants_.end()) {
    state = &it->second;
  } else {
    // Unknown tenant with durable history: carry the spend under the
    // default budget (even a zero default — the debt is real either way).
    state = &tenants_[tenant];
    state->budget = options_.default_budget;
  }
  if (std::find(state->charged.begin(), state->charged.end(), release_key) !=
      state->charged.end()) {
    return;
  }
  state->spent += epsilon;
  state->charged.push_back(release_key);
}

double TenantLedger::Spent(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0.0 : it->second.spent;
}

double TenantLedger::Budget(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? options_.default_budget : it->second.budget;
}

std::vector<TenantLedger::TenantRow> TenantLedger::Rows() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantRow> rows;
  rows.reserve(tenants_.size());
  for (const auto& [tenant, state] : tenants_) {
    rows.push_back({tenant, state.spent, state.budget});
  }
  return rows;
}

}  // namespace agmdp::server

#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "src/util/rng.h"

namespace agmdp::server {

namespace {

void SetSocketTimeout(int fd, int option, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

}  // namespace

util::Result<Client> Client::Connect(const std::string& host, int port) {
  return Connect(host, port, ClientOptions{});
}

util::Result<Client> Client::Connect(const std::string& host, int port,
                                     const ClientOptions& options) {
  if (port <= 0 || port > 65535) {
    return util::Status::InvalidArgument("client: port must be in [1,65535]");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::Internal(std::string("client: socket(): ") +
                                  std::strerror(errno));
  }
  // SO_SNDTIMEO bounds connect() as well as send() on Linux; the receive
  // timeout turns an unresponsive server into a typed DeadlineExceeded.
  SetSocketTimeout(fd, SO_SNDTIMEO, std::max(options.connect_timeout_ms,
                                             options.io_timeout_ms));
  SetSocketTimeout(fd, SO_RCVTIMEO, options.io_timeout_ms);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("client: bad address '" + host +
                                         "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    if (err == EAGAIN || err == EWOULDBLOCK || err == EINPROGRESS ||
        err == ETIMEDOUT) {
      return util::Status::DeadlineExceeded(
          "client: connect(" + host + ":" + std::to_string(port) +
          ") timed out");
    }
    return util::Status::Unavailable("client: connect(" + host + ":" +
                                     std::to_string(port) +
                                     "): " + std::strerror(err));
  }
  // After connecting, sends use the io timeout, not the connect timeout.
  SetSocketTimeout(fd, SO_SNDTIMEO, options.io_timeout_ms);
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), pending_(std::move(other.pending_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    pending_ = std::move(other.pending_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

util::Status Client::Send(const Request& request) {
  const std::string line = SerializeRequest(request) + "\n";
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return util::Status::DeadlineExceeded("client: send() timed out");
      }
      return util::Status::Unavailable(
          std::string("client: send(): ") +
          (n == 0 ? "connection closed" : std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return util::Status();
}

util::Result<Response> Client::ReadResponse() {
  char buf[4096];
  while (true) {
    const size_t newline = pending_.find('\n');
    if (newline != std::string::npos) {
      std::string line = pending_.substr(0, newline);
      pending_.erase(0, newline + 1);
      if (line.empty()) continue;
      return ParseResponse(line);
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return util::Status::DeadlineExceeded(
            "client: no response within the io timeout");
      }
      return util::Status::Unavailable(
          "client: server closed the connection");
    }
    pending_.append(buf, static_cast<size_t>(n));
  }
}

util::Result<Response> Client::Call(const Request& request) {
  if (auto st = Send(request); !st.ok()) return st;
  auto response = ReadResponse();
  if (!response.ok()) return response;
  if (response.value().id != request.id) {
    return util::Status::Internal(
        "client: response id " + std::to_string(response.value().id) +
        " does not match request id " + std::to_string(request.id) +
        " (pipelined caller should match ids itself)");
  }
  return response;
}

util::Result<Response> CallWithRetry(const std::string& host, int port,
                                     const Request& request,
                                     const ClientOptions& options,
                                     const RetryPolicy& policy) {
  if (policy.max_attempts < 1) {
    return util::Status::InvalidArgument(
        "client: retry policy needs max_attempts >= 1");
  }
  util::Rng jitter(policy.jitter_seed);
  double backoff_ms = static_cast<double>(policy.initial_backoff_ms);
  util::Status last = util::Status::Unavailable("client: no attempt made");
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    if (attempt > 1) {
      // Full jitter on the capped exponential step: sleep a uniform
      // fraction of it so synchronized clients fan out instead of
      // hammering a recovering server in lockstep.
      const double capped =
          std::min(backoff_ms, static_cast<double>(policy.max_backoff_ms));
      const double sleep_ms = capped * (0.5 + 0.5 * jitter.UniformDouble());
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<int64_t>(sleep_ms * 1000.0)));
      backoff_ms *= policy.backoff_multiplier;
    }
    auto client = Client::Connect(host, port, options);
    if (!client.ok()) {
      last = client.status();
    } else {
      auto response = client.value().Call(request);
      if (response.ok()) return response;
      last = response.status();
    }
    const util::StatusCode code = last.code();
    if (code != util::StatusCode::kUnavailable &&
        code != util::StatusCode::kDeadlineExceeded) {
      return last;  // not a transport failure; retrying cannot help
    }
  }
  return last;
}

}  // namespace agmdp::server

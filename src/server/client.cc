#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace agmdp::server {

util::Result<Client> Client::Connect(const std::string& host, int port) {
  if (port <= 0 || port > 65535) {
    return util::Status::InvalidArgument("client: port must be in [1,65535]");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::Internal(std::string("client: socket(): ") +
                                  std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("client: bad address '" + host +
                                         "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::Unavailable("client: connect(" + host + ":" +
                                     std::to_string(port) + "): " + err);
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), pending_(std::move(other.pending_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    pending_ = std::move(other.pending_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

util::Status Client::Send(const Request& request) {
  const std::string line = SerializeRequest(request) + "\n";
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return util::Status::Unavailable(
          std::string("client: send(): ") +
          (n == 0 ? "connection closed" : std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return util::Status();
}

util::Result<Response> Client::ReadResponse() {
  char buf[4096];
  while (true) {
    const size_t newline = pending_.find('\n');
    if (newline != std::string::npos) {
      std::string line = pending_.substr(0, newline);
      pending_.erase(0, newline + 1);
      if (line.empty()) continue;
      return ParseResponse(line);
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      return util::Status::Unavailable(
          "client: server closed the connection");
    }
    pending_.append(buf, static_cast<size_t>(n));
  }
}

util::Result<Response> Client::Call(const Request& request) {
  if (auto st = Send(request); !st.ok()) return st;
  auto response = ReadResponse();
  if (!response.ok()) return response;
  if (response.value().id != request.id) {
    return util::Status::Internal(
        "client: response id " + std::to_string(response.value().id) +
        " does not match request id " + std::to_string(request.id) +
        " (pipelined caller should match ids itself)");
  }
  return response;
}

}  // namespace agmdp::server

// Byte-budgeted LRU cache of serving engines — the daemon's buffer pool.
//
// Entries are ReleaseEngines keyed by the client-chosen name. Each entry
// charges ReleaseEngine::ApproxBytes() against a fixed byte budget;
// admitting an engine that does not fit evicts least-recently-used
// *unpinned* entries until it does, and fails with a typed
// ResourceExhausted when even a fully drained cache cannot hold it (or
// everything still resident is pinned). The same idiom as a database
// buffer pool: budget, LRU victim scan, pin counts, typed rejection.
//
// Pinning has two layers:
//   * a lease (shared_ptr) taken per request keeps the engine alive while
//     the request runs, even if the entry is evicted mid-flight — eviction
//     only drops the cache's reference;
//   * a sticky pin flag (the pin/unpin protocol ops) excludes the entry
//     from victim scans entirely, for artifacts a tenant wants resident.
//
// Thread-safe; all operations take one mutex. Engine *construction* is
// the caller's job and happens outside the lock — the cache only admits
// finished engines, so a slow fit never stalls serving for other entries.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/pipeline/release_engine.h"
#include "src/util/status.h"

namespace agmdp::server {

/// Monotone counters of cache behaviour, snapshot under the cache mutex.
struct EngineCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;
  /// Admissions rejected because the budget cannot hold the engine.
  uint64_t rejections = 0;
  uint64_t bytes_in_use = 0;
  uint64_t byte_budget = 0;
  uint64_t entries = 0;
  uint64_t pinned_entries = 0;
};

/// \brief Byte-budgeted LRU cache of named ReleaseEngines.
class EngineCache {
 public:
  /// A budget of 0 disables the cap (admission always succeeds).
  explicit EngineCache(uint64_t byte_budget) : byte_budget_(byte_budget) {}

  /// Admits `engine` under `name`, evicting LRU unpinned entries as needed.
  /// Replacing an existing unpinned entry is allowed (the old engine is
  /// dropped first); replacing a pinned entry is FailedPrecondition.
  /// Returns ResourceExhausted — and leaves the cache unchanged except for
  /// evictions already performed — when the engine cannot fit.
  util::Status Insert(const std::string& name,
                      std::shared_ptr<pipeline::ReleaseEngine> engine);

  /// Looks up `name`, marks it most-recently-used, and returns a lease
  /// that keeps the engine alive for the duration of the request. NotFound
  /// when absent (counted as a miss).
  util::Result<std::shared_ptr<pipeline::ReleaseEngine>> Lookup(
      const std::string& name);

  /// True if `name` is resident (no LRU touch, no counter change).
  bool Contains(const std::string& name) const;

  /// Sets / clears the sticky pin flag. NotFound when absent.
  util::Status Pin(const std::string& name);
  util::Status Unpin(const std::string& name);

  /// Drops `name`. NotFound when absent; FailedPrecondition when pinned.
  util::Status Erase(const std::string& name);

  EngineCacheStats Stats() const;

 private:
  struct Entry {
    std::shared_ptr<pipeline::ReleaseEngine> engine;
    uint64_t bytes = 0;
    bool pinned = false;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_pos;
  };

  /// Evicts LRU unpinned entries until `needed` bytes fit, or returns
  /// ResourceExhausted. Callers hold mu_.
  util::Status MakeRoom(uint64_t needed);
  /// Drops one entry (callers hold mu_ and count the eviction themselves).
  void Remove(std::map<std::string, Entry>::iterator it);

  const uint64_t byte_budget_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  /// Recency list of entry names; front = most recently used.
  std::list<std::string> lru_;
  EngineCacheStats stats_;
};

}  // namespace agmdp::server

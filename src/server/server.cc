#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/graph/graph_io.h"
#include "src/graph/graph_source.h"
#include "src/pipeline/release_artifact.h"
#include "src/util/fault_injector.h"

namespace agmdp::server {

namespace {

Response ErrorResponse(uint64_t id, util::Status status) {
  Response response;
  response.id = id;
  response.status = std::move(status);
  return response;
}

/// Two sample requests coalesce when every parameter that feeds the
/// sampler besides the sequence range is identical.
bool Compatible(const Request& a, const Request& b) {
  return a.op == RequestOp::kSample && b.op == RequestOp::kSample &&
         a.name == b.name && a.seed == b.seed &&
         a.refine_iterations == b.refine_iterations;
}

}  // namespace

util::Result<std::unique_ptr<Server>> Server::Start(
    const ServerOptions& options) {
  if (options.worker_threads < 1) {
    return util::Status::InvalidArgument(
        "server: worker_threads must be >= 1");
  }
  if (options.max_queue < 1) {
    return util::Status::InvalidArgument("server: max_queue must be >= 1");
  }
  if (options.port < 0 || options.port > 65535) {
    return util::Status::InvalidArgument("server: port must be in [0,65535]");
  }
  std::unique_ptr<Server> server(new Server(options));

  if (!options.registry_path.empty()) {
    registry::RegistryOptions registry_options;
    registry_options.default_dataset_cap = options.default_dataset_cap;
    registry_options.dataset_caps = options.dataset_caps;
    registry_options.fsync = options.registry_fsync;
    auto registry = registry::ArtifactRegistry::Open(options.registry_path,
                                                     registry_options);
    if (!registry.ok()) return registry.status();
    server->registry_ = std::move(registry).value();
    // Rebuild the ledger from the journal before serving a single request:
    // epsilon acknowledged in a previous process life stays spent.
    for (const registry::TenantChargeRow& row :
         server->registry_->TenantCharges()) {
      server->ledger_.Restore(row.tenant, row.release_key, row.epsilon);
    }
  }

  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return util::Status::Internal(std::string("server: socket(): ") +
                                  std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("server: bad listen address '" +
                                         options.host + "'");
  }
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return util::Status::Internal(std::string("server: bind(") +
                                  options.host + "): " +
                                  std::strerror(errno));
  }
  if (::listen(server->listen_fd_, 64) != 0) {
    return util::Status::Internal(std::string("server: listen(): ") +
                                  std::strerror(errno));
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(server->listen_fd_,
                    reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    return util::Status::Internal(std::string("server: getsockname(): ") +
                                  std::strerror(errno));
  }
  server->port_ = ntohs(bound.sin_port);

  server->listener_ = std::thread([raw = server.get()] { raw->ListenLoop(); });
  for (int i = 0; i < options.worker_threads; ++i) {
    server->workers_.emplace_back([raw = server.get()] { raw->WorkerLoop(); });
  }
  return server;
}

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(options.cache_bytes),
      ledger_(TenantLedgerOptions{options.default_tenant_budget,
                                  options.tenant_budgets}) {}

Server::~Server() {
  Stop();
  Wait();
}

void Server::Stop() { StopInternal(false); }

void Server::Drain() { StopInternal(true); }

void Server::StopInternal(bool drain) {
  if (stopping_.exchange(true)) return;
  {
    // conns_mu_ also guards the fd values against the Wait() teardown:
    // Stop() may run on a reader thread (shutdown op) concurrently with
    // the joining thread closing descriptors.
    const std::lock_guard<std::mutex> lock(conns_mu_);
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    for (const auto& conn : conns_) {
      // Drain half-closes for reading only: no new requests can arrive,
      // but responses for already-queued work still flush to the client
      // before Wait() tears the sockets down.
      if (conn->fd >= 0) ::shutdown(conn->fd, drain ? SHUT_RD : SHUT_RDWR);
    }
  }
  queue_cv_.notify_all();
  stop_cv_.notify_all();
}

void Server::Wait() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return stopping_.load(); });
  if (joined_) return;
  joined_ = true;
  lock.unlock();

  if (listener_.joinable()) listener_.join();
  for (const auto& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Every worker is done: compact the journal so the next process recovers
  // from one checkpoint record instead of replaying the whole history. A
  // failure here loses nothing — the journal it would have compacted is
  // still the durable truth.
  if (registry_ != nullptr) {
    if (auto st = registry_->Checkpoint(); !st.ok()) {
      std::fprintf(stderr, "server: registry checkpoint at shutdown: %s\n",
                   st.ToString().c_str());
    }
  }
  // Every thread is joined: descriptors stayed open (never reused for a
  // different client) until this single teardown point, so a queued
  // response can never have landed on a recycled descriptor — and closing
  // them now cannot race a worker's write. conns_mu_ orders the close
  // against a belated Stop() still shutting the same fds down.
  const std::lock_guard<std::mutex> conns_lock(conns_mu_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (const auto& conn : conns_) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
}

void Server::ListenLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;
    }
    const std::lock_guard<std::mutex> lock(conns_mu_);
    // Stop() already swept conns_ if it ran; shut the latecomer down under
    // the same mutex so its reader cannot be missed and block Wait().
    if (stopping_.load()) ::shutdown(fd, SHUT_RDWR);
    conns_.push_back(std::make_unique<Connection>());
    Connection* conn = conns_.back().get();
    conn->fd = fd;
    conn->thread = std::thread([this, conn] { ConnectionLoop(conn); });
  }
}

void Server::WriteResponse(Connection* conn, const Response& response) {
  if (util::FaultAction fault = util::PollFault("server.send"); fault.fire) {
    // Simulate a dead peer / failed send: drop the response on the floor
    // and kill the connection, exactly what the client-side retry must
    // survive.
    ::shutdown(conn->fd, SHUT_RDWR);
    return;
  }
  const std::string line = SerializeResponse(response) + "\n";
  const std::lock_guard<std::mutex> lock(conn->write_mu);
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(conn->fd, line.data() + sent, line.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // SO_SNDTIMEO expired: the client stopped draining responses.
        // Abandon the connection rather than park this worker forever.
        {
          const std::lock_guard<std::mutex> stats_lock(stats_mu_);
          ++stats_.write_timeouts;
        }
        ::shutdown(conn->fd, SHUT_RDWR);
      }
      return;  // client hung up; the request is already done
    }
    sent += static_cast<size_t>(n);
  }
}

void Server::ConnectionLoop(Connection* conn) {
  using Clock = std::chrono::steady_clock;
  // SO_RCVTIMEO gives recv() a coarse polling granularity; the actual
  // read/idle deadlines are enforced against a monotonic clock below, so
  // the precision of the socket timeout never matters.
  const bool timed =
      options_.read_timeout_ms > 0 || options_.idle_timeout_ms > 0;
  if (timed) {
    timeval poll_tv{};
    poll_tv.tv_sec = 0;
    poll_tv.tv_usec = 100 * 1000;
    ::setsockopt(conn->fd, SOL_SOCKET, SO_RCVTIMEO, &poll_tv,
                 sizeof(poll_tv));
  }
  if (options_.write_timeout_ms > 0) {
    timeval send_tv{};
    send_tv.tv_sec = options_.write_timeout_ms / 1000;
    send_tv.tv_usec = (options_.write_timeout_ms % 1000) * 1000;
    ::setsockopt(conn->fd, SOL_SOCKET, SO_SNDTIMEO, &send_tv,
                 sizeof(send_tv));
  }
  std::string pending;
  char buf[4096];
  Clock::time_point last_byte = Clock::now();
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) break;
      if (stopping_.load()) break;
      const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - last_byte)
                              .count();
      if (!pending.empty() && options_.read_timeout_ms > 0 &&
          waited >= options_.read_timeout_ms) {
        // A request line started arriving and then stalled — the
        // slow-loris shape. Tell the client why, then reap.
        {
          const std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.reaped_deadline;
        }
        WriteResponse(
            conn, ErrorResponse(
                      0, util::Status::DeadlineExceeded(
                             "server: request not completed within " +
                             std::to_string(options_.read_timeout_ms) +
                             " ms read deadline; closing connection")));
        ::shutdown(conn->fd, SHUT_RDWR);
        break;
      }
      if (pending.empty() && options_.idle_timeout_ms > 0 &&
          waited >= options_.idle_timeout_ms) {
        {
          const std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.reaped_idle;
        }
        WriteResponse(conn,
                      ErrorResponse(0, util::Status::DeadlineExceeded(
                                           "server: idle connection reaped "
                                           "after " +
                                           std::to_string(
                                               options_.idle_timeout_ms) +
                                           " ms")));
        ::shutdown(conn->fd, SHUT_RDWR);
        break;
      }
      continue;
    }
    last_byte = Clock::now();
    pending.append(buf, static_cast<size_t>(n));
    size_t newline;
    while ((newline = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.requests;
      }
      auto parsed = ParseRequest(line);
      if (!parsed.ok()) {
        {
          const std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.rejected_parse;
        }
        WriteResponse(conn, ErrorResponse(0, parsed.status()));
        continue;
      }
      Request request = std::move(parsed).value();

      if (request.op == RequestOp::kShutdown) {
        // Answered inline so shutdown works even with a saturated queue;
        // the response must hit the wire before Stop() closes the socket.
        Response ok;
        ok.id = request.id;
        WriteResponse(conn, ok);
        Stop();
        continue;
      }
      if (stopping_.load()) {
        WriteResponse(conn, ErrorResponse(request.id,
                                          util::Status::Unavailable(
                                              "server: shutting down")));
        continue;
      }

      bool admitted = false;
      {
        const std::lock_guard<std::mutex> lock(queue_mu_);
        if (queue_.size() < options_.max_queue) {
          queue_.push_back(Job{conn, std::move(request)});
          admitted = true;
        }
      }
      if (admitted) {
        queue_cv_.notify_one();
      } else {
        {
          const std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.rejected_queue_full;
        }
        WriteResponse(
            conn, ErrorResponse(
                      request.id,
                      util::Status::ResourceExhausted(
                          "server: admission queue is full (capacity " +
                          std::to_string(options_.max_queue) +
                          "); retry later")));
      }
    }
    if (pending.size() > kMaxRequestBytes) {
      WriteResponse(conn, ErrorResponse(0, util::Status::InvalidArgument(
                                               "server: request line exceeds " +
                                               std::to_string(
                                                   kMaxRequestBytes) +
                                               " bytes")));
      break;
    }
  }
}

bool Server::NextBatch(std::vector<Job>* batch) {
  batch->clear();
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock, [this] { return stopping_.load() || !queue_.empty(); });
  if (queue_.empty()) return false;  // stopping, queue drained
  batch->push_back(std::move(queue_.front()));
  queue_.pop_front();
  // By value: growing `batch` below reallocates and would dangle a
  // reference into it.
  const Request head = batch->front().request;
  if (options_.batching && head.op == RequestOp::kSample) {
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (Compatible(head, it->request)) {
        batch->push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return true;
}

void Server::ExecuteBatch(std::vector<Job>& batch) {
  if (batch.size() == 1) {
    Job& job = batch.front();
    WriteResponse(job.conn, Handle(job.request));
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches;
    stats_.batched_requests += batch.size();
  }
  const Request& head = batch.front().request;
  auto lease = cache_.Lookup(head.name);
  if (!lease.ok()) {
    for (Job& job : batch) {
      WriteResponse(job.conn, ErrorResponse(job.request.id, lease.status()));
    }
    return;
  }
  const pipeline::ReleaseEngine& engine = *lease.value();
  const uint64_t release_key = pipeline::ReleaseArtifactReleaseKey(
      engine.artifact());

  // Every tenant pays (idempotently) before any sampling happens; jobs
  // whose tenant is out of budget drop out of the batch with a typed
  // error while the rest proceed.
  std::vector<Job*> active;
  for (Job& job : batch) {
    auto st = ChargeTenant(job.request.tenant, release_key,
                           engine.artifact().epsilon_spent);
    if (st.ok()) {
      active.push_back(&job);
    } else {
      WriteResponse(job.conn, ErrorResponse(job.request.id, std::move(st)));
    }
  }
  std::sort(active.begin(), active.end(), [](const Job* a, const Job* b) {
    return a->request.sequence < b->request.sequence;
  });

  // Coalesce contiguous sequence ranges into single SampleMany calls.
  // Each graph is a pure function of (seed, sequence), so the regrouping
  // is bitwise-identical to serving every request alone.
  size_t i = 0;
  while (i < active.size()) {
    const uint64_t run_start = active[i]->request.sequence;
    uint64_t run_end = run_start + static_cast<uint64_t>(
                                       active[i]->request.count);
    size_t j = i + 1;
    while (j < active.size() && active[j]->request.sequence == run_end) {
      run_end += static_cast<uint64_t>(active[j]->request.count);
      ++j;
    }
    pipeline::SampleRequest base;
    base.seed = head.seed;
    base.sequence = run_start;
    base.refine_iterations = head.refine_iterations;
    auto graphs = engine.SampleMany(static_cast<int>(run_end - run_start),
                                    base);
    if (!graphs.ok()) {
      for (size_t k = i; k < j; ++k) {
        WriteResponse(active[k]->conn,
                      ErrorResponse(active[k]->request.id, graphs.status()));
      }
    } else {
      std::vector<graph::AttributedGraph>& all = graphs.value();
      size_t offset = 0;
      for (size_t k = i; k < j; ++k) {
        const size_t count = static_cast<size_t>(active[k]->request.count);
        std::vector<graph::AttributedGraph> slice(
            std::make_move_iterator(all.begin() +
                                    static_cast<ptrdiff_t>(offset)),
            std::make_move_iterator(all.begin() +
                                    static_cast<ptrdiff_t>(offset + count)));
        offset += count;
        WriteResponse(active[k]->conn,
                      FinishSample(active[k]->request, std::move(slice)));
      }
    }
    i = j;
  }
}

void Server::WorkerLoop() {
  std::vector<Job> batch;
  while (NextBatch(&batch)) ExecuteBatch(batch);
}

Response Server::Handle(const Request& request) {
  switch (request.op) {
    case RequestOp::kLoad:
      return HandleLoad(request);
    case RequestOp::kSample:
      return HandleSample(request);
    case RequestOp::kPin: {
      Response response;
      response.id = request.id;
      response.status = cache_.Pin(request.name);
      return response;
    }
    case RequestOp::kUnpin: {
      Response response;
      response.id = request.id;
      response.status = cache_.Unpin(request.name);
      return response;
    }
    case RequestOp::kUnload: {
      Response response;
      response.id = request.id;
      response.status = cache_.Erase(request.name);
      return response;
    }
    case RequestOp::kStats:
      return HandleStats(request);
    case RequestOp::kShutdown: {
      Stop();
      Response response;
      response.id = request.id;
      return response;
    }
  }
  return ErrorResponse(request.id,
                       util::Status::Internal("server: unhandled op"));
}

util::Status Server::ChargeTenant(const std::string& tenant,
                                  uint64_t release_key, double epsilon) {
  bool newly_charged = false;
  if (auto st = ledger_.Charge(tenant, release_key, epsilon, &newly_charged);
      !st.ok()) {
    return st;
  }
  if (newly_charged && registry_ != nullptr) {
    // Journal the fresh debit and fsync BEFORE the request is answered: a
    // crash after this point finds the spend on disk; a crash before it
    // finds an unacknowledged request. The in-memory debit is deliberately
    // NOT rolled back when the journal fails — over-counting is the safe
    // direction for a privacy budget.
    if (auto st = registry_->ChargeTenant(tenant, release_key, epsilon);
        !st.ok()) {
      return st;
    }
  }
  return util::Status::OK();
}

Response Server::HandleLoad(const Request& request) {
  util::Result<pipeline::ReleaseArtifact> artifact =
      [&]() -> util::Result<pipeline::ReleaseArtifact> {
    if (!request.dataset.empty()) {
      if (registry_ == nullptr) {
        return util::Status::FailedPrecondition(
            "server: load by dataset/name needs a daemon started with "
            "--registry");
      }
      return registry_->Resolve(request.dataset, request.name);
    }
    return pipeline::ReadReleaseArtifact(request.artifact);
  }();
  if (!artifact.ok()) return ErrorResponse(request.id, artifact.status());

  // The ledger is charged before the (expensive) engine build: the debit
  // is idempotent per release key, so a later cache rejection followed by
  // a retry costs the tenant nothing extra.
  const uint64_t release_key =
      pipeline::ReleaseArtifactReleaseKey(artifact.value());
  if (auto st = ChargeTenant(request.tenant, release_key,
                             artifact.value().epsilon_spent);
      !st.ok()) {
    return ErrorResponse(request.id, std::move(st));
  }

  pipeline::EngineOptions engine_options;
  engine_options.threads = options_.engine_threads;
  auto engine = pipeline::ReleaseEngine::Create(std::move(artifact).value(),
                                                engine_options);
  if (!engine.ok()) return ErrorResponse(request.id, engine.status());
  std::shared_ptr<pipeline::ReleaseEngine> shared =
      std::move(engine).value();
  const uint64_t bytes = shared->ApproxBytes();
  if (auto st = cache_.Insert(request.name, std::move(shared)); !st.ok()) {
    return ErrorResponse(request.id, std::move(st));
  }

  Response response;
  response.id = request.id;
  response.stats.emplace_back("engine_bytes", static_cast<double>(bytes));
  response.stats.emplace_back(
      "cache_bytes_in_use", static_cast<double>(cache_.Stats().bytes_in_use));
  return response;
}

Response Server::HandleSample(const Request& request) {
  auto lease = cache_.Lookup(request.name);
  if (!lease.ok()) return ErrorResponse(request.id, lease.status());
  const pipeline::ReleaseEngine& engine = *lease.value();
  if (auto st = ChargeTenant(
          request.tenant,
          pipeline::ReleaseArtifactReleaseKey(engine.artifact()),
          engine.artifact().epsilon_spent);
      !st.ok()) {
    return ErrorResponse(request.id, std::move(st));
  }
  pipeline::SampleRequest base;
  base.seed = request.seed;
  base.sequence = request.sequence;
  base.refine_iterations = request.refine_iterations;
  auto graphs = engine.SampleMany(request.count, base);
  if (!graphs.ok()) return ErrorResponse(request.id, graphs.status());
  return FinishSample(request, std::move(graphs).value());
}

Response Server::FinishSample(const Request& request,
                              std::vector<graph::AttributedGraph> graphs) {
  Response response;
  response.id = request.id;
  response.graphs.reserve(graphs.size());
  for (size_t i = 0; i < graphs.size(); ++i) {
    GraphSummary summary;
    summary.nodes = graphs[i].num_nodes();
    summary.edges = graphs[i].num_edges();
    summary.checksum = GraphChecksum(graphs[i]);
    if (!request.out.empty()) {
      // Format routing is the client's file-name choice: an --out ending
      // in .agmbin makes every numbered sample a binary container.
      summary.path = graph::NumberedGraphPath(
          request.out, request.sequence + static_cast<uint64_t>(i));
      if (auto st = graph::WriteGraph(graphs[i], summary.path); !st.ok()) {
        return ErrorResponse(request.id, std::move(st));
      }
    }
    response.graphs.push_back(std::move(summary));
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.graphs_served += graphs.size();
  }
  return response;
}

Response Server::HandleStats(const Request& request) {
  Response response;
  response.id = request.id;
  const ServerStats stats = Stats();
  const EngineCacheStats cache = cache_.Stats();
  auto add = [&response](const char* key, double value) {
    response.stats.emplace_back(key, value);
  };
  add("requests", static_cast<double>(stats.requests));
  add("rejected_queue_full", static_cast<double>(stats.rejected_queue_full));
  add("rejected_parse", static_cast<double>(stats.rejected_parse));
  add("batches", static_cast<double>(stats.batches));
  add("batched_requests", static_cast<double>(stats.batched_requests));
  add("graphs_served", static_cast<double>(stats.graphs_served));
  add("reaped_idle", static_cast<double>(stats.reaped_idle));
  add("reaped_deadline", static_cast<double>(stats.reaped_deadline));
  add("write_timeouts", static_cast<double>(stats.write_timeouts));
  add("cache_hits", static_cast<double>(cache.hits));
  add("cache_misses", static_cast<double>(cache.misses));
  add("cache_evictions", static_cast<double>(cache.evictions));
  add("cache_insertions", static_cast<double>(cache.insertions));
  add("cache_rejections", static_cast<double>(cache.rejections));
  add("cache_bytes_in_use", static_cast<double>(cache.bytes_in_use));
  add("cache_byte_budget", static_cast<double>(cache.byte_budget));
  add("cache_entries", static_cast<double>(cache.entries));
  add("cache_pinned_entries", static_cast<double>(cache.pinned_entries));
  for (const TenantLedger::TenantRow& row : ledger_.Rows()) {
    response.stats.emplace_back("tenant_spent:" + row.tenant, row.spent);
    response.stats.emplace_back("tenant_budget:" + row.tenant, row.budget);
  }
  if (registry_ != nullptr) {
    const registry::RegistryStats reg = registry_->Stats();
    add("registry_artifacts", static_cast<double>(reg.artifacts));
    add("registry_datasets", static_cast<double>(reg.datasets));
    add("registry_tenant_charges", static_cast<double>(reg.tenant_charges));
    add("registry_recovered_records",
        static_cast<double>(reg.recovered_records));
    add("registry_discarded_tail_bytes",
        static_cast<double>(reg.discarded_tail_bytes));
    add("registry_appends", static_cast<double>(reg.appends));
    add("registry_checkpoints", static_cast<double>(reg.checkpoints));
    add("registry_journal_bytes", static_cast<double>(reg.journal_bytes));
    add("registry_wounded", reg.wounded ? 1.0 : 0.0);
    for (const registry::DatasetRow& row : registry_->Datasets()) {
      response.stats.emplace_back("dataset_spent:" + row.dataset, row.spent);
      response.stats.emplace_back("dataset_cap:" + row.dataset, row.cap);
    }
  }
  return response;
}

ServerStats Server::Stats() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace agmdp::server

#include "src/server/protocol.h"

#include <cstdio>

namespace agmdp::server {

namespace {

using util::JsonValue;

/// Compact single-line JSON building. JsonWriter pretty-prints across
/// lines, which a newline-delimited protocol cannot carry, so the few flat
/// shapes the protocol needs are rendered by hand here.
void AppendString(std::string* out, const std::string& key,
                  const std::string& value, bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += util::JsonEscape(key);
  *out += "\":\"";
  *out += util::JsonEscape(value);
  *out += '"';
}

void AppendUint(std::string* out, const std::string& key, uint64_t value,
                bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += util::JsonEscape(key);
  *out += "\":";
  // The reader parses JSON numbers through a double, which is exact only
  // up to 2^53; bigger values (seeds, sequence offsets) travel as decimal
  // strings, which ReadUint64 accepts equally.
  if (value <= (uint64_t{1} << 53)) {
    *out += std::to_string(value);
  } else {
    *out += '"';
    *out += std::to_string(value);
    *out += '"';
  }
}

void AppendInt(std::string* out, const std::string& key, int64_t value,
               bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += util::JsonEscape(key);
  *out += "\":";
  *out += std::to_string(value);
}

void AppendBool(std::string* out, const std::string& key, bool value,
                bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += util::JsonEscape(key);
  *out += "\":";
  *out += value ? "true" : "false";
}

void AppendDouble(std::string* out, const std::string& key, double value,
                  bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += util::JsonEscape(key);
  *out += "\":";
  *out += util::JsonNumberExact(value);
}

util::Status Invalid(const std::string& what) {
  return util::Status::InvalidArgument("protocol: " + what);
}

/// Reads a non-negative integer member that may arrive as a JSON number
/// (when it fits a double exactly) or as a decimal string (always exact).
util::Status ReadUint64(const JsonValue& object, const std::string& key,
                        uint64_t* out) {
  const JsonValue* member = object.Find(key);
  if (member == nullptr) return util::Status::OK();  // keep default
  if (member->is_string()) {
    const std::string& text = member->string_value();
    if (text.empty()) return Invalid("'" + key + "' must be an integer");
    uint64_t value = 0;
    for (char c : text) {
      if (c < '0' || c > '9') {
        return Invalid("'" + key + "' must be an integer");
      }
      const uint64_t digit = static_cast<uint64_t>(c - '0');
      if (value > (UINT64_MAX - digit) / 10) {
        return Invalid("'" + key + "' overflows uint64");
      }
      value = value * 10 + digit;
    }
    *out = value;
    return util::Status::OK();
  }
  if (member->is_number()) {
    const double v = member->number_value();
    if (v < 0 || v != static_cast<double>(static_cast<uint64_t>(v))) {
      return Invalid("'" + key + "' must be a non-negative integer");
    }
    *out = static_cast<uint64_t>(v);
    return util::Status::OK();
  }
  return Invalid("'" + key + "' must be an integer");
}

util::Status ReadInt(const JsonValue& object, const std::string& key,
                     int* out) {
  const JsonValue* member = object.Find(key);
  if (member == nullptr) return util::Status::OK();
  if (!member->is_number() ||
      member->number_value() !=
          static_cast<double>(static_cast<int64_t>(member->number_value()))) {
    return Invalid("'" + key + "' must be an integer");
  }
  const double v = member->number_value();
  if (v < -2147483648.0 || v > 2147483647.0) {
    return Invalid("'" + key + "' is out of range");
  }
  *out = static_cast<int>(v);
  return util::Status::OK();
}

util::Status ReadString(const JsonValue& object, const std::string& key,
                        std::string* out) {
  const JsonValue* member = object.Find(key);
  if (member == nullptr) return util::Status::OK();
  if (!member->is_string()) return Invalid("'" + key + "' must be a string");
  *out = member->string_value();
  return util::Status::OK();
}

}  // namespace

const char* RequestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::kLoad: return "load";
    case RequestOp::kSample: return "sample";
    case RequestOp::kPin: return "pin";
    case RequestOp::kUnpin: return "unpin";
    case RequestOp::kUnload: return "unload";
    case RequestOp::kStats: return "stats";
    case RequestOp::kShutdown: return "shutdown";
  }
  return "unknown";
}

util::Result<Request> ParseRequest(const std::string& line) {
  util::JsonLimits limits;
  limits.max_bytes = kMaxRequestBytes;
  limits.max_depth = kMaxRequestDepth;
  auto parsed = JsonValue::Parse(line, limits);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& object = parsed.value();
  if (!object.is_object()) return Invalid("request must be a JSON object");

  Request request;
  std::string op;
  if (auto st = ReadString(object, "op", &op); !st.ok()) return st;
  bool known = false;
  for (RequestOp candidate :
       {RequestOp::kLoad, RequestOp::kSample, RequestOp::kPin,
        RequestOp::kUnpin, RequestOp::kUnload, RequestOp::kStats,
        RequestOp::kShutdown}) {
    if (op == RequestOpName(candidate)) {
      request.op = candidate;
      known = true;
      break;
    }
  }
  if (!known) return Invalid("unknown op '" + op + "'");

  if (auto st = ReadUint64(object, "id", &request.id); !st.ok()) return st;
  if (auto st = ReadString(object, "tenant", &request.tenant); !st.ok()) {
    return st;
  }
  if (auto st = ReadString(object, "name", &request.name); !st.ok()) return st;
  if (auto st = ReadString(object, "artifact", &request.artifact); !st.ok()) {
    return st;
  }
  if (auto st = ReadString(object, "dataset", &request.dataset); !st.ok()) {
    return st;
  }
  if (auto st = ReadUint64(object, "seed", &request.seed); !st.ok()) return st;
  if (auto st = ReadUint64(object, "sequence", &request.sequence); !st.ok()) {
    return st;
  }
  if (auto st = ReadInt(object, "count", &request.count); !st.ok()) return st;
  if (auto st = ReadInt(object, "refine", &request.refine_iterations);
      !st.ok()) {
    return st;
  }
  if (auto st = ReadString(object, "out", &request.out); !st.ok()) return st;

  switch (request.op) {
    case RequestOp::kLoad:
      if (request.name.empty()) return Invalid("load needs 'name'");
      if (request.artifact.empty() == request.dataset.empty()) {
        return Invalid(
            "load needs exactly one of 'artifact' (a file path) or "
            "'dataset' (a registry lookup)");
      }
      break;
    case RequestOp::kSample:
      if (request.name.empty()) return Invalid("sample needs 'name'");
      if (request.count < 1) return Invalid("'count' must be >= 1");
      if (request.refine_iterations < -1) {
        return Invalid("'refine' must be >= -1");
      }
      break;
    case RequestOp::kPin:
    case RequestOp::kUnpin:
    case RequestOp::kUnload:
      if (request.name.empty()) {
        return Invalid(std::string(RequestOpName(request.op)) +
                       " needs 'name'");
      }
      break;
    case RequestOp::kStats:
    case RequestOp::kShutdown:
      break;
  }
  return request;
}

std::string SerializeRequest(const Request& request) {
  std::string out = "{";
  bool first = true;
  AppendString(&out, "op", RequestOpName(request.op), &first);
  AppendUint(&out, "id", request.id, &first);
  if (!request.tenant.empty()) {
    AppendString(&out, "tenant", request.tenant, &first);
  }
  if (!request.name.empty()) AppendString(&out, "name", request.name, &first);
  if (!request.artifact.empty()) {
    AppendString(&out, "artifact", request.artifact, &first);
  }
  if (!request.dataset.empty()) {
    AppendString(&out, "dataset", request.dataset, &first);
  }
  if (request.op == RequestOp::kSample) {
    AppendUint(&out, "seed", request.seed, &first);
    AppendUint(&out, "sequence", request.sequence, &first);
    AppendInt(&out, "count", request.count, &first);
    if (request.refine_iterations >= 0) {
      AppendInt(&out, "refine", request.refine_iterations, &first);
    }
    if (!request.out.empty()) AppendString(&out, "out", request.out, &first);
  }
  out += '}';
  return out;
}

std::string SerializeResponse(const Response& response) {
  std::string out = "{";
  bool first = true;
  AppendUint(&out, "id", response.id, &first);
  AppendBool(&out, "ok", response.status.ok(), &first);
  if (!response.status.ok()) {
    AppendString(&out, "code", util::StatusCodeToString(response.status.code()),
                 &first);
    AppendString(&out, "error", response.status.message(), &first);
  }
  if (!response.graphs.empty()) {
    if (!first) out += ',';
    first = false;
    out += "\"graphs\":[";
    for (size_t i = 0; i < response.graphs.size(); ++i) {
      const GraphSummary& g = response.graphs[i];
      if (i > 0) out += ',';
      out += '{';
      bool inner = true;
      AppendUint(&out, "nodes", g.nodes, &inner);
      AppendUint(&out, "edges", g.edges, &inner);
      // Checksums exceed 2^53; a JSON number would corrupt them.
      AppendString(&out, "checksum", std::to_string(g.checksum), &inner);
      if (!g.path.empty()) AppendString(&out, "path", g.path, &inner);
      out += '}';
    }
    out += ']';
  }
  if (!response.stats.empty()) {
    if (!first) out += ',';
    first = false;
    out += "\"stats\":{";
    bool inner = true;
    for (const auto& [key, value] : response.stats) {
      AppendDouble(&out, key, value, &inner);
    }
    out += '}';
  }
  out += '}';
  return out;
}

util::Result<Response> ParseResponse(const std::string& line) {
  util::JsonLimits limits;
  limits.max_bytes = 0;  // responses can carry many graph summaries
  limits.max_depth = kMaxRequestDepth;
  auto parsed = JsonValue::Parse(line, limits);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& object = parsed.value();
  if (!object.is_object()) return Invalid("response must be a JSON object");

  Response response;
  if (auto st = ReadUint64(object, "id", &response.id); !st.ok()) return st;
  const JsonValue* ok = object.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Invalid("response needs a boolean 'ok'");
  }
  if (!ok->bool_value()) {
    std::string code = "Internal";
    std::string message;
    if (auto st = ReadString(object, "code", &code); !st.ok()) return st;
    if (auto st = ReadString(object, "error", &message); !st.ok()) return st;
    response.status = util::Status::FromCodeMessage(
        util::StatusCodeFromString(code), std::move(message));
  }
  if (const JsonValue* graphs = object.Find("graphs"); graphs != nullptr) {
    if (!graphs->is_array()) return Invalid("'graphs' must be an array");
    for (const JsonValue& item : graphs->array_items()) {
      if (!item.is_object()) return Invalid("graph summaries must be objects");
      GraphSummary summary;
      uint64_t nodes = 0;
      if (auto st = ReadUint64(item, "nodes", &nodes); !st.ok()) return st;
      if (nodes > UINT32_MAX) return Invalid("'nodes' is out of range");
      summary.nodes = static_cast<uint32_t>(nodes);
      if (auto st = ReadUint64(item, "edges", &summary.edges); !st.ok()) {
        return st;
      }
      if (auto st = ReadUint64(item, "checksum", &summary.checksum);
          !st.ok()) {
        return st;
      }
      if (auto st = ReadString(item, "path", &summary.path); !st.ok()) {
        return st;
      }
      response.graphs.push_back(std::move(summary));
    }
  }
  if (const JsonValue* stats = object.Find("stats"); stats != nullptr) {
    if (!stats->is_object()) return Invalid("'stats' must be an object");
    for (const auto& [key, value] : stats->members()) {
      if (!value.is_number()) return Invalid("stats values must be numbers");
      response.stats.emplace_back(key, value.number_value());
    }
  }
  return response;
}

uint64_t GraphChecksum(const graph::AttributedGraph& g) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xffu;
      h *= 1099511628211ULL;
    }
  };
  mix(g.num_nodes());
  mix(static_cast<uint64_t>(g.num_attributes()));
  for (const graph::Edge& e : g.structure().CanonicalEdges()) {
    mix(e.u);
    mix(e.v);
  }
  for (graph::AttrConfig a : g.attributes()) mix(a);
  return h;
}

}  // namespace agmdp::server

// The `agmdp serve` daemon: a long-lived multi-tenant sampling server over
// the fit-once / sample-many pipeline.
//
//   listener thread ──accept──▶ connection reader threads
//        │                           │  parse line (hardened JSON caps)
//        │                           ▼
//        │                 bounded admission queue ──full──▶ immediate
//        │                           │                typed rejection
//        │                           ▼
//        │                  worker threads: coalesce compatible sample
//        │                  requests into one SampleMany, execute, write
//        │                  responses (per-connection write mutex)
//        ▼
//   EngineCache (byte-budgeted LRU of ReleaseEngines, pin/lease)
//   TenantLedger (per-tenant epsilon caps, idempotent per release)
//
// Serving is pure post-processing of fitted artifacts (paper Theorem 2):
// the daemon never touches sensitive data, only release artifacts, so a
// crash or eviction can never cost privacy budget — the ledger alone
// decides what a tenant may load.
//
// Determinism contract: every served graph is
// ReleaseEngine::Sample({seed, sequence}) — a pure function of the request
// and the artifact. Batching only re-groups contiguous sequence ranges
// into SampleMany calls, which is bitwise-identical to serving each
// request alone, so concurrency, queue order and batch shape never change
// a single sampled bit.
//
// Backpressure: the admission queue is bounded; when it is full the reader
// thread answers RESOURCE_EXHAUSTED immediately instead of buffering —
// clients see load shedding, not unbounded latency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/registry/artifact_registry.h"
#include "src/server/engine_cache.h"
#include "src/server/protocol.h"
#include "src/server/tenant_ledger.h"
#include "src/util/status.h"

namespace agmdp::server {

struct ServerOptions {
  /// Listen address. The daemon is a localhost tool; binding non-loopback
  /// addresses is the operator's responsibility.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back from port()).
  int port = 0;
  /// Worker threads executing requests (>= 1).
  int worker_threads = 2;
  /// Workers of each cached engine's sampler pool (never affects bits).
  int engine_threads = 1;
  /// Admission queue capacity; a full queue rejects instead of buffering.
  size_t max_queue = 64;
  /// Engine cache byte budget (0 = unlimited).
  uint64_t cache_bytes = 256ull * 1024 * 1024;
  /// Epsilon budget for tenants without an explicit entry (<= 0 rejects
  /// unknown tenants).
  double default_tenant_budget = 0.0;
  /// Per-tenant epsilon budget overrides.
  std::vector<std::pair<std::string, double>> tenant_budgets;
  /// Coalesce compatible queued sample requests into one SampleMany call.
  bool batching = true;
  /// Path of the durable ArtifactRegistry. Empty = no registry: tenant
  /// charges are memory-only (lost on restart) and registry-resolved loads
  /// are refused. With a registry, every fresh ledger debit is journaled
  /// and fsynced BEFORE the load is acknowledged, and the ledger is
  /// rebuilt from the journal at startup — restarts are epsilon-safe.
  std::string registry_path;
  /// Lifetime per-dataset epsilon caps for the registry (see
  /// registry::RegistryOptions).
  double default_dataset_cap = 0.0;
  std::vector<std::pair<std::string, double>> dataset_caps;
  /// fsync registry appends (disable only in tests).
  bool registry_fsync = true;
  /// Once a request line has started arriving, the client has this long to
  /// finish it before the connection is reaped with DeadlineExceeded
  /// (slow-loris defense). <= 0 disables.
  int read_timeout_ms = 30'000;
  /// A connection with no bytes in flight may sit idle this long before
  /// being reaped. <= 0 disables.
  int idle_timeout_ms = 300'000;
  /// Per-send socket timeout; a client that stops draining responses for
  /// this long gets its connection shut down. <= 0 disables.
  int write_timeout_ms = 30'000;
};

/// Monotone request-path counters (cache and ledger keep their own).
struct ServerStats {
  uint64_t requests = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_parse = 0;
  uint64_t batches = 0;
  /// Sample requests that rode in a batch of >= 2.
  uint64_t batched_requests = 0;
  uint64_t graphs_served = 0;
  /// Connections reaped with no request in flight (idle_timeout_ms).
  uint64_t reaped_idle = 0;
  /// Connections reaped mid-request (read_timeout_ms, slow-loris).
  uint64_t reaped_deadline = 0;
  /// Responses abandoned because the client stopped draining the socket.
  uint64_t write_timeouts = 0;
};

/// \brief The serving daemon. Construct via Start(), drive via TCP or the
/// in-process Handle(), shut down via the shutdown op or Stop().
class Server {
 public:
  /// Binds, listens, and spawns the listener + worker threads. On success
  /// the daemon is serving; port() has the bound port.
  static util::Result<std::unique_ptr<Server>> Start(
      const ServerOptions& options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Joins everything; implies Stop().
  ~Server();

  /// The bound TCP port.
  int port() const { return port_; }

  /// Signals shutdown (idempotent, non-blocking, safe from worker
  /// threads): unblocks the listener, readers and workers. Join with
  /// Wait() or the destructor.
  void Stop();

  /// Graceful variant for SIGTERM: stops accepting and half-closes every
  /// connection for reading, but lets queued work finish and its responses
  /// flush before the sockets go down. Wait() then also checkpoints the
  /// registry. Idempotent with Stop() (first signal wins).
  void Drain();

  /// Blocks until the daemon stops, then joins all threads.
  void Wait();

  /// Executes one request synchronously on the calling thread — the same
  /// code path workers run, minus queueing/batching. Public so tests (and
  /// embedders) can drive the daemon without a socket.
  Response Handle(const Request& request);

  ServerStats Stats() const;
  EngineCacheStats CacheStats() const { return cache_.Stats(); }
  const TenantLedger& ledger() const { return ledger_; }
  /// The durable registry, or nullptr when the daemon runs without one.
  const registry::ArtifactRegistry* registry() const {
    return registry_.get();
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    /// Serializes response lines onto the socket (readers write
    /// rejections, workers write results).
    std::mutex write_mu;
  };

  /// One admitted request awaiting a worker.
  struct Job {
    Connection* conn = nullptr;
    Request request;
  };

  explicit Server(const ServerOptions& options);

  void StopInternal(bool drain);

  Response HandleLoad(const Request& request);
  Response HandleSample(const Request& request);
  Response HandleStats(const Request& request);

  /// Debits the in-memory ledger and, when the debit is fresh and a
  /// registry is open, journals it durably. The request fails if the
  /// journal append fails (the memory debit stays — over-counting is the
  /// safe direction); success means the spend survives a crash.
  util::Status ChargeTenant(const std::string& tenant, uint64_t release_key,
                            double epsilon);

  /// Writes out-graphs (when requested) and builds the per-graph
  /// summaries, consuming `graphs`.
  Response FinishSample(const Request& request,
                        std::vector<graph::AttributedGraph> graphs);

  void ListenLoop();
  void ConnectionLoop(Connection* conn);
  void WorkerLoop();

  /// Pops one job; when it is a sample request and batching is on, also
  /// drains every queued compatible job (same name/seed/refine) into
  /// `batch`. Returns false at shutdown with the queue drained.
  bool NextBatch(std::vector<Job>* batch);
  /// Executes a batch: coalesces contiguous sequence runs into SampleMany
  /// calls and answers every job. Falls back to per-job Handle() for
  /// non-sample ops and singleton batches.
  void ExecuteBatch(std::vector<Job>& batch);

  void WriteResponse(Connection* conn, const Response& response);

  const ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;

  EngineCache cache_;
  TenantLedger ledger_;
  std::unique_ptr<registry::ArtifactRegistry> registry_;

  std::atomic<bool> stopping_{false};
  std::thread listener_;
  std::vector<std::thread> workers_;

  std::mutex conns_mu_;
  /// Connections live until teardown (std::list: stable addresses for
  /// queued jobs even after the client hangs up).
  std::list<std::unique_ptr<Connection>> conns_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool joined_ = false;
};

}  // namespace agmdp::server

#include "src/server/engine_cache.h"

#include <sstream>
#include <utility>

namespace agmdp::server {

void EngineCache::Remove(std::map<std::string, Entry>::iterator it) {
  stats_.bytes_in_use -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

util::Status EngineCache::MakeRoom(uint64_t needed) {
  if (byte_budget_ == 0) return util::Status();
  if (needed > byte_budget_) {
    std::ostringstream msg;
    msg << "engine cache: engine needs " << needed
        << " bytes but the cache budget is " << byte_budget_;
    ++stats_.rejections;
    return util::Status::ResourceExhausted(msg.str());
  }
  // Victim scan from the LRU tail, skipping pinned entries.
  auto victim = lru_.end();
  while (stats_.bytes_in_use + needed > byte_budget_) {
    if (victim == lru_.begin()) {
      std::ostringstream msg;
      msg << "engine cache: engine needs " << needed << " bytes, "
          << (byte_budget_ - stats_.bytes_in_use)
          << " free of budget " << byte_budget_
          << ", and every resident entry is pinned";
      ++stats_.rejections;
      return util::Status::ResourceExhausted(msg.str());
    }
    --victim;
    auto it = entries_.find(*victim);
    if (it->second.pinned) continue;
    victim = lru_.end();  // list mutated below; restart the scan from tail
    Remove(it);
    ++stats_.evictions;
  }
  return util::Status();
}

util::Status EngineCache::Insert(
    const std::string& name,
    std::shared_ptr<pipeline::ReleaseEngine> engine) {
  if (engine == nullptr) {
    return util::Status::InvalidArgument("engine cache: null engine");
  }
  const uint64_t bytes = engine->ApproxBytes();
  const std::lock_guard<std::mutex> lock(mu_);
  auto existing = entries_.find(name);
  if (existing != entries_.end()) {
    if (existing->second.pinned) {
      return util::Status::FailedPrecondition(
          "engine cache: entry '" + name +
          "' is pinned; unpin it before replacing");
    }
    Remove(existing);
  }
  if (auto st = MakeRoom(bytes); !st.ok()) return st;
  lru_.push_front(name);
  Entry& entry = entries_[name];
  entry.engine = std::move(engine);
  entry.bytes = bytes;
  entry.lru_pos = lru_.begin();
  stats_.bytes_in_use += bytes;
  ++stats_.insertions;
  return util::Status();
}

util::Result<std::shared_ptr<pipeline::ReleaseEngine>> EngineCache::Lookup(
    const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    ++stats_.misses;
    return util::Status::NotFound("engine cache: no engine named '" + name +
                                  "' is loaded");
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.engine;
}

bool EngineCache::Contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(name) != 0;
}

util::Status EngineCache::Pin(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return util::Status::NotFound("engine cache: no engine named '" + name +
                                  "' is loaded");
  }
  it->second.pinned = true;
  return util::Status();
}

util::Status EngineCache::Unpin(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return util::Status::NotFound("engine cache: no engine named '" + name +
                                  "' is loaded");
  }
  it->second.pinned = false;
  return util::Status();
}

util::Status EngineCache::Erase(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return util::Status::NotFound("engine cache: no engine named '" + name +
                                  "' is loaded");
  }
  if (it->second.pinned) {
    return util::Status::FailedPrecondition(
        "engine cache: entry '" + name + "' is pinned; unpin it first");
  }
  Remove(it);
  return util::Status();
}

EngineCacheStats EngineCache::Stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  EngineCacheStats snapshot = stats_;
  snapshot.byte_budget = byte_budget_;
  snapshot.entries = entries_.size();
  snapshot.pinned_entries = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.pinned) ++snapshot.pinned_entries;
  }
  return snapshot;
}

}  // namespace agmdp::server

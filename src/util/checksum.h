// CRC32C (Castagnoli) checksums for the binary graph container.
//
// The container checksums every fixed-size data page plus the header and
// the page-checksum table itself (graph/graph_container.h), so corruption
// anywhere in a file surfaces as a typed ChecksumMismatch Status instead
// of whatever the mmap'd garbage happens to decode to. CRC32C is the
// storage-engine standard (RocksDB, LevelDB, ext4) — good burst-error
// detection at a few bytes/cycle in software.
//
// Implementation: slice-by-4 table lookup, little-endian, no hardware
// intrinsics (the container must verify identically on every build,
// including the -DAGMDP_DISABLE_AVX2 scalar CI leg).
#pragma once

#include <cstddef>
#include <cstdint>

namespace agmdp::util {

/// CRC32C of `len` bytes. Extend a running checksum by passing the
/// previous result as `seed` (byte-stream concatenation semantics:
/// Crc32c(ab) == Crc32c(b, len_b, Crc32c(a, len_a))).
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace agmdp::util

// Minimal streaming JSON writer for the machine-readable bench and sweep
// artifacts (BENCH_perf.json, BENCH_sweep.json).
//
// The writer emits deterministically formatted output: keys appear in the
// order they are written and numbers are rendered with a fixed printf
// format, so two runs that produce the same values produce byte-identical
// documents — the property the sweep engine's determinism contract (and its
// tests) rely on.
#pragma once

#include <string>
#include <vector>

namespace agmdp::util {

/// Escapes a string for use inside a JSON string literal (quotes are not
/// added).
std::string JsonEscape(const std::string& s);

/// Renders a double with a fixed "%.10g" format ("null" for non-finite
/// values, which JSON cannot represent).
std::string JsonNumber(double value);

/// \brief Builds a JSON document through nested containers.
///
/// Usage:
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("cells").BeginArray();
///   ...
///   json.EndArray();
///   json.EndObject();
///   std::string doc = json.Finish();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes an object key; must be followed by a value or container.
  JsonWriter& Key(const std::string& key);

  JsonWriter& Value(double v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }

  /// The completed document (call once, after all containers are closed).
  std::string Finish();

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: the number of elements written so far.
  std::vector<int> counts_;
  bool pending_key_ = false;
  int indent_ = 0;
};

}  // namespace agmdp::util

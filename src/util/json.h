// Minimal streaming JSON writer and recursive-descent reader for the
// machine-readable artifacts (BENCH_perf.json, BENCH_sweep.json, and the
// release-artifact files the serving layer exchanges).
//
// The writer emits deterministically formatted output: keys appear in the
// order they are written and numbers are rendered with a fixed printf
// format, so two runs that produce the same values produce byte-identical
// documents — the property the sweep engine's determinism contract (and its
// tests) rely on. The reader parses any document the writer emits (plus
// ordinary hand-written JSON) into a JsonValue tree; ValueExact uses 17
// significant digits, so doubles written that way round-trip bit-exactly.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace agmdp::util {

/// Escapes a string for use inside a JSON string literal (quotes are not
/// added).
std::string JsonEscape(const std::string& s);

/// Renders a double with a fixed "%.10g" format ("null" for non-finite
/// values, which JSON cannot represent).
std::string JsonNumber(double value);

/// Renders a double with 17 significant digits — enough that parsing the
/// text recovers the exact bit pattern (round-trip safe; used by the
/// release-artifact serialization).
std::string JsonNumberExact(double value);

/// \brief Builds a JSON document through nested containers.
///
/// Usage:
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("cells").BeginArray();
///   ...
///   json.EndArray();
///   json.EndObject();
///   std::string doc = json.Finish();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes an object key; must be followed by a value or container.
  JsonWriter& Key(const std::string& key);

  JsonWriter& Value(double v);
  /// Like Value(double) but with JsonNumberExact formatting (bit-exact
  /// round trip through the reader).
  JsonWriter& ValueExact(double v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }

  /// The completed document (call once, after all containers are closed).
  std::string Finish();

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: the number of elements written so far.
  std::vector<int> counts_;
  bool pending_key_ = false;
  int indent_ = 0;
};

/// \brief Resource caps applied while parsing untrusted JSON.
///
/// The reader is recursive-descent, so nesting consumes C++ stack — the
/// depth cap turns adversarial nesting into a typed InvalidArgument instead
/// of a stack overflow, and the byte cap rejects oversized documents before
/// any parsing work. The defaults suit trusted local artifacts; anything
/// that arrives over a socket must pass tighter limits (the server protocol
/// uses kMaxRequestBytes / kMaxRequestDepth from src/server/protocol.h).
struct JsonLimits {
  /// Maximum document size in bytes; 0 = unlimited.
  size_t max_bytes = 0;
  /// Maximum container nesting depth (a flat scalar is depth 0).
  int max_depth = 64;
};

/// \brief A parsed JSON document node.
///
/// Objects keep their members in document order (duplicate keys are
/// rejected at parse time); Find does a linear scan, which is fine for the
/// small artifact headers this reader serves.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete JSON document (one top-level value, nothing but
  /// whitespace after it). Errors carry a byte offset. Every limit
  /// violation — depth, size, malformed or truncated UTF-8 — is a typed
  /// InvalidArgument, never a crash: this is the boundary where network
  /// input becomes data.
  static Result<JsonValue> Parse(const std::string& text);
  static Result<JsonValue> Parse(const std::string& text,
                                 const JsonLimits& limits);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  /// Accessors trust the caller checked the kind (they return harmless
  /// defaults otherwise — fallible lookups go through Find + kind checks).
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace agmdp::util

#include "src/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace agmdp::util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kChecksumMismatch:
      return "ChecksumMismatch";
    case StatusCode::kVersionMismatch:
      return "VersionMismatch";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

StatusCode StatusCodeFromString(const std::string& name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition, StatusCode::kInternal,
      StatusCode::kIoError,      StatusCode::kUnimplemented,
      StatusCode::kResourceExhausted,  StatusCode::kUnavailable,
      StatusCode::kCorruption,   StatusCode::kChecksumMismatch,
      StatusCode::kVersionMismatch,  StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : kAll) {
    if (name == StatusCodeToString(code)) return code;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace agmdp::util

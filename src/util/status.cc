#include "src/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace agmdp::util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace agmdp::util

#include "src/util/checksum.h"

namespace agmdp::util {

namespace {

// 0x82F63B78 is the reflected Castagnoli polynomial; the tables are the
// standard slice-by-4 expansion (table[k][b] = CRC of byte b followed by k
// zero bytes), built once at first use.
struct Crc32cTables {
  uint32_t t[4][256];

  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 4; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const Crc32cTables& tables = Tables();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (len >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tables.t[3][crc & 0xFFu] ^ tables.t[2][(crc >> 8) & 0xFFu] ^
          tables.t[1][(crc >> 16) & 0xFFu] ^ tables.t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace agmdp::util

#include "src/util/simd.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace agmdp::util {

namespace {

bool Avx2CpuSupport() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

// The environment switch is read once: flipping it mid-process would make
// "which arm ran" depend on call order, which is exactly the kind of state
// the determinism contract forbids. Tests use SetSimdIsaOverride instead.
bool Avx2DisabledByEnv() {
  static const bool disabled = [] {
    const char* value = std::getenv("AGMDP_DISABLE_AVX2");
    return value != nullptr && value[0] != '\0' &&
           std::strcmp(value, "0") != 0;
  }();
  return disabled;
}

SimdIsa g_override = SimdIsa::kAuto;

}  // namespace

const char* SimdIsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAuto:
      return "auto";
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool Avx2Supported() {
  static const bool supported = internal::Avx2Compiled() && Avx2CpuSupport();
  return supported;
}

SimdIsa ResolveSimdIsa(SimdIsa requested) {
  if (requested == SimdIsa::kAuto) {
    if (g_override != SimdIsa::kAuto) return g_override;
    return (Avx2Supported() && !Avx2DisabledByEnv()) ? SimdIsa::kAvx2
                                                     : SimdIsa::kScalar;
  }
  if (requested == SimdIsa::kAvx2 &&
      (!Avx2Supported() || Avx2DisabledByEnv())) {
    return SimdIsa::kScalar;
  }
  return requested;
}

void SetSimdIsaOverride(SimdIsa isa) {
  g_override = isa == SimdIsa::kAuto ? SimdIsa::kAuto : ResolveSimdIsa(isa);
}

void SquaredSqrtDiff(const double* p, const double* q, size_t n,
                     double* out) {
  if (ActiveSimdIsa() == SimdIsa::kAvx2) {
    internal::SquaredSqrtDiffAvx2(p, q, n, out);
  } else {
    internal::SquaredSqrtDiffScalar(p, q, n, out);
  }
}

namespace internal {

void SquaredSqrtDiffScalar(const double* p, const double* q, size_t n,
                           double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double d =
        std::sqrt(std::max(0.0, p[i])) - std::sqrt(std::max(0.0, q[i]));
    out[i] = d * d;
  }
}

}  // namespace internal

}  // namespace agmdp::util

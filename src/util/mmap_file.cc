#include "src/util/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace agmdp::util {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      writable_(other.writable_),
      path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.writable_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    writable_ = other.writable_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.writable_ = false;
  }
  return *this;
}

MappedFile::~MappedFile() { Reset(); }

void MappedFile::Reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(data_, static_cast<size_t>(size_));
    data_ = nullptr;
  }
  size_ = 0;
  writable_ = false;
}

Result<MappedFile> MappedFile::OpenReadOnly(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Errno("cannot stat", path);
    ::close(fd);
    return status;
  }
  MappedFile file;
  file.path_ = path;
  file.size_ = static_cast<uint64_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, static_cast<size_t>(file.size_), PROT_READ,
                        MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      const Status status = Errno("cannot mmap", path);
      ::close(fd);
      return status;
    }
    file.data_ = static_cast<uint8_t*>(addr);
  }
  // The mapping holds its own reference to the inode; the descriptor is
  // no longer needed.
  ::close(fd);
  return file;
}

Result<MappedFile> MappedFile::CreateReadWrite(const std::string& path,
                                               uint64_t size) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot create", path);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const Status status = Errno("cannot size", path);
    ::close(fd);
    return status;
  }
  MappedFile file;
  file.path_ = path;
  file.size_ = size;
  file.writable_ = true;
  if (size > 0) {
    void* addr = ::mmap(nullptr, static_cast<size_t>(size),
                        PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      const Status status = Errno("cannot mmap", path);
      ::close(fd);
      return status;
    }
    file.data_ = static_cast<uint8_t*>(addr);
  }
  ::close(fd);
  return file;
}

Result<MappedFile> MappedFile::OpenReadWrite(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return Errno("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Errno("cannot stat", path);
    ::close(fd);
    return status;
  }
  MappedFile file;
  file.path_ = path;
  file.size_ = static_cast<uint64_t>(st.st_size);
  file.writable_ = true;
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, static_cast<size_t>(file.size_),
                        PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      const Status status = Errno("cannot mmap", path);
      ::close(fd);
      return status;
    }
    file.data_ = static_cast<uint8_t*>(addr);
  }
  ::close(fd);
  return file;
}

Status MappedFile::Sync() {
  if (!writable_ || data_ == nullptr) return Status::OK();
  if (::msync(data_, static_cast<size_t>(size_), MS_SYNC) != 0) {
    return Errno("cannot msync", path_);
  }
  return Status::OK();
}

}  // namespace agmdp::util

// Internal invariant checks. These abort on failure and are meant for
// programmer errors, not for recoverable conditions (use Status for those).
#pragma once

#include <cstdio>
#include <cstdlib>

#define AGMDP_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "AGMDP_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define AGMDP_CHECK_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "AGMDP_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, (msg));                        \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Aborts if `expr` (a Status) is not OK.
#define AGMDP_CHECK_OK(expr)                                               \
  do {                                                                     \
    const ::agmdp::util::Status _agmdp_st = (expr);                        \
    if (!_agmdp_st.ok()) {                                                 \
      std::fprintf(stderr, "AGMDP_CHECK_OK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, _agmdp_st.ToString().c_str());      \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#include "src/util/json.h"

#include <cmath>
#include <cstdio>

#include "src/util/check.h"

namespace agmdp::util {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

void JsonWriter::BeforeValue() {
  if (counts_.empty()) return;  // top-level value
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (counts_.back() > 0) out_ += ",";
  out_ += "\n";
  out_.append(static_cast<size_t>(2 * indent_), ' ');
  ++counts_.back();
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += "{";
  counts_.push_back(0);
  ++indent_;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  AGMDP_CHECK(!counts_.empty() && !pending_key_);
  const bool empty = counts_.back() == 0;
  counts_.pop_back();
  --indent_;
  if (!empty) {
    out_ += "\n";
    out_.append(static_cast<size_t>(2 * indent_), ' ');
  }
  out_ += "}";
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += "[";
  counts_.push_back(0);
  ++indent_;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  AGMDP_CHECK(!counts_.empty() && !pending_key_);
  const bool empty = counts_.back() == 0;
  counts_.pop_back();
  --indent_;
  if (!empty) {
    out_ += "\n";
    out_.append(static_cast<size_t>(2 * indent_), ' ');
  }
  out_ += "]";
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  AGMDP_CHECK(!counts_.empty() && !pending_key_);
  if (counts_.back() > 0) out_ += ",";
  out_ += "\n";
  out_.append(static_cast<size_t>(2 * indent_), ' ');
  ++counts_.back();
  out_ += "\"" + JsonEscape(key) + "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  out_ += JsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  BeforeValue();
  out_ += "\"" + JsonEscape(v) + "\"";
  return *this;
}

std::string JsonWriter::Finish() {
  AGMDP_CHECK(counts_.empty() && !pending_key_);
  return out_ + "\n";
}

}  // namespace agmdp::util

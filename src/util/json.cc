#include "src/util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/check.h"

namespace agmdp::util {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

std::string JsonNumberExact(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void JsonWriter::BeforeValue() {
  if (counts_.empty()) return;  // top-level value
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (counts_.back() > 0) out_ += ",";
  out_ += "\n";
  out_.append(static_cast<size_t>(2 * indent_), ' ');
  ++counts_.back();
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += "{";
  counts_.push_back(0);
  ++indent_;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  AGMDP_CHECK(!counts_.empty() && !pending_key_);
  const bool empty = counts_.back() == 0;
  counts_.pop_back();
  --indent_;
  if (!empty) {
    out_ += "\n";
    out_.append(static_cast<size_t>(2 * indent_), ' ');
  }
  out_ += "}";
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += "[";
  counts_.push_back(0);
  ++indent_;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  AGMDP_CHECK(!counts_.empty() && !pending_key_);
  const bool empty = counts_.back() == 0;
  counts_.pop_back();
  --indent_;
  if (!empty) {
    out_ += "\n";
    out_.append(static_cast<size_t>(2 * indent_), ' ');
  }
  out_ += "]";
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  AGMDP_CHECK(!counts_.empty() && !pending_key_);
  if (counts_.back() > 0) out_ += ",";
  out_ += "\n";
  out_.append(static_cast<size_t>(2 * indent_), ' ');
  ++counts_.back();
  out_ += "\"" + JsonEscape(key) + "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  out_ += JsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::ValueExact(double v) {
  BeforeValue();
  out_ += JsonNumberExact(v);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  BeforeValue();
  out_ += "\"" + JsonEscape(v) + "\"";
  return *this;
}

std::string JsonWriter::Finish() {
  AGMDP_CHECK(counts_.empty() && !pending_key_);
  return out_ + "\n";
}

// ----------------------------------------------------------------- reader

/// Single-pass recursive-descent parser over the document text. Depth and
/// input size are bounded so a hostile document — adversarial nesting, a
/// multi-gigabyte body — fails with a typed error instead of blowing the
/// stack or the heap.
class JsonParser {
 public:
  JsonParser(const std::string& text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  Result<JsonValue> Parse() {
    if (limits_.max_bytes > 0 && text_.size() > limits_.max_bytes) {
      return Status::InvalidArgument(
          "json: document of " + std::to_string(text_.size()) +
          " bytes exceeds the " + std::to_string(limits_.max_bytes) +
          "-byte limit");
    }
    JsonValue value;
    if (Status st = ParseValue(&value, 0); !st.ok()) return st;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after the top-level value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t n = std::string(literal).size();
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > limits_.max_depth) {
      return Error("nesting deeper than the " +
                   std::to_string(limits_.max_depth) + "-level limit");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of document");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind_ = JsonValue::Kind::kString;
      return ParseString(&out->string_);
    }
    if (ConsumeLiteral("true")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      return Status::OK();
    }
    if (ConsumeLiteral("false")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      return Status::OK();
    }
    if (ConsumeLiteral("null")) {
      out->kind_ = JsonValue::Kind::kNull;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      if (Status st = ParseString(&key); !st.ok()) return st;
      for (const auto& [existing, value] : out->members_) {
        (void)value;
        if (existing == key) return Error("duplicate key '" + key + "'");
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after key");
      JsonValue member;
      if (Status st = ParseValue(&member, depth + 1); !st.ok()) return st;
      out->members_.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue item;
      if (Status st = ParseValue(&item, depth + 1); !st.ok()) return st;
      out->items_.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (static_cast<unsigned char>(c) >= 0x80) {
        // Validate the multi-byte UTF-8 sequence in place: a truncated or
        // malformed sequence from the wire must be a typed error, not a
        // byte soup passed downstream.
        const auto lead = static_cast<unsigned char>(c);
        int continuation;
        if ((lead & 0xe0) == 0xc0 && lead >= 0xc2) continuation = 1;
        else if ((lead & 0xf0) == 0xe0) continuation = 2;
        else if ((lead & 0xf8) == 0xf0 && lead <= 0xf4) continuation = 3;
        else return Error("malformed UTF-8 lead byte in string");
        if (pos_ + static_cast<size_t>(continuation) > text_.size()) {
          return Error("truncated UTF-8 sequence in string");
        }
        *out += c;
        for (int i = 0; i < continuation; ++i) {
          const auto b = static_cast<unsigned char>(text_[pos_]);
          if ((b & 0xc0) != 0x80) {
            return Error("truncated UTF-8 sequence in string");
          }
          *out += text_[pos_++];
        }
        continue;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad hex digit in \\u escape");
          }
          if (code >= 0xd800 && code <= 0xdfff) {
            return Error("surrogate \\u escapes are not supported");
          }
          // UTF-8 encode the BMP codepoint.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xc0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            *out += static_cast<char>(0xe0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            *out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return Error("unknown escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      return Error("bad number '" + token + "'");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return Status::OK();
  }

  const std::string& text_;
  const JsonLimits limits_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text, JsonLimits{}).Parse();
}

Result<JsonValue> JsonValue::Parse(const std::string& text,
                                   const JsonLimits& limits) {
  return JsonParser(text, limits).Parse();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

}  // namespace agmdp::util

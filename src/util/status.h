// Status / Result<T> error-handling primitives (RocksDB/Arrow idiom).
//
// Fallible public APIs in this library return Status (or Result<T> when they
// produce a value). Internal invariant violations use AGMDP_CHECK instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace agmdp::util {

/// Canonical error codes, a minimal subset of the absl/gRPC code set.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIoError = 6,
  kUnimplemented = 7,
  /// A budget would be exceeded (cache byte budget, tenant epsilon cap,
  /// admission queue) — the buffer-pool idiom's typed rejection. Retryable
  /// for transient resources (queue slots), permanent for spent budgets.
  kResourceExhausted = 8,
  /// The service cannot take the request right now (shutting down).
  kUnavailable = 9,
  /// Stored data is structurally invalid (bad magic, truncated file,
  /// impossible section bounds, broken CSR invariants) — the storage
  /// engine's typed corruption class (lumen/RocksDB idiom).
  kCorruption = 10,
  /// A page/header/table checksum did not verify: the bytes were damaged
  /// after they were written. Distinct from kCorruption so callers can
  /// tell bit rot from a structurally bogus file.
  kChecksumMismatch = 11,
  /// The file carries an incompatible format version (or byte order);
  /// re-convert with the current tools.
  kVersionMismatch = 12,
  /// An operation ran past its deadline (socket read/write timeout, idle
  /// connection reaped). Retryable on idempotent requests.
  kDeadlineExceeded = 13,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString — the wire protocol (src/server) carries
/// codes by name. Unrecognized names map to kInternal.
StatusCode StatusCodeFromString(const std::string& name);

/// \brief A success-or-error value describing the outcome of an operation.
///
/// Cheap to copy in the OK case (no allocation). Construct errors through the
/// named factory functions, e.g. `Status::InvalidArgument("k must be > 0")`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ChecksumMismatch(std::string msg) {
    return Status(StatusCode::kChecksumMismatch, std::move(msg));
  }
  static Status VersionMismatch(std::string msg) {
    return Status(StatusCode::kVersionMismatch, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Rebuilds a status from (code, message) — the deserialization side of
  /// the wire protocol. An OK code yields an OK status (message dropped).
  static Status FromCodeMessage(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: k must be > 0" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Holds either a value of type T or an error Status.
///
/// Accessing `value()` on an error Result aborts the process; check `ok()`
/// first (or use `value_or`).
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from a non-OK status (error). An OK status without a value is
  /// a bug and is normalized to an Internal error.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResultAccess(status_);
}

}  // namespace agmdp::util

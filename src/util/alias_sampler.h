// Walker/Vose alias method for O(1) sampling from a discrete distribution.
//
// Used for the Chung-Lu pi distribution (sample a node with probability
// proportional to its degree) and for general weighted choices. Construction
// is O(n); each sample costs one table lookup and one coin flip. The
// threshold and alias target live in one packed bucket, so a draw touches a
// single cache line of the table — the FCL proposal loop draws twice per
// proposed edge, making this the hottest load in structural sampling.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::util {

/// \brief Samples indices i in [0, n) with probability weights[i] / sum(w).
class AliasSampler {
 public:
  /// Builds the alias table. Weights must be non-negative with a positive
  /// sum; returns InvalidArgument otherwise.
  static Result<AliasSampler> Build(const std::vector<double>& weights);

  /// Draws one index.
  size_t Sample(Rng& rng) const {
    AGMDP_CHECK(!buckets_.empty());
    const size_t i = rng.UniformIndex(buckets_.size());
    const Bucket& b = buckets_[i];
    return rng.UniformDouble() < b.prob ? i : b.alias;
  }

  /// Number of categories.
  size_t size() const { return buckets_.size(); }

  /// Probability mass assigned to index i (for testing/debugging).
  double MassOf(size_t i) const { return mass_[i]; }

 private:
  AliasSampler() = default;

  struct Bucket {
    double prob = 0.0;   // threshold: keep i with this probability
    uint32_t alias = 0;  // otherwise redirect to this index
  };

  std::vector<Bucket> buckets_;
  std::vector<double> mass_;  // normalized input masses
};

}  // namespace agmdp::util

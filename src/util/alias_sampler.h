// Walker/Vose alias method for O(1) sampling from a discrete distribution.
//
// Used for the Chung-Lu pi distribution (sample a node with probability
// proportional to its degree) and for general weighted choices. Construction
// is O(n); each sample costs one table lookup and one coin flip.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::util {

/// \brief Samples indices i in [0, n) with probability weights[i] / sum(w).
class AliasSampler {
 public:
  /// Builds the alias table. Weights must be non-negative with a positive
  /// sum; returns InvalidArgument otherwise.
  static Result<AliasSampler> Build(const std::vector<double>& weights);

  /// Draws one index.
  size_t Sample(Rng& rng) const;

  /// Number of categories.
  size_t size() const { return prob_.size(); }

  /// Probability mass assigned to index i (for testing/debugging).
  double MassOf(size_t i) const { return mass_[i]; }

 private:
  AliasSampler() = default;

  std::vector<double> prob_;   // threshold per bucket
  std::vector<uint32_t> alias_;  // alias target per bucket
  std::vector<double> mass_;   // normalized input masses
};

}  // namespace agmdp::util

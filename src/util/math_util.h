// Small arithmetic helpers shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace agmdp::util {

/// a * b clamped to UINT64_MAX instead of wrapping. Proposal budgets are
/// products of caller-supplied knobs (max_proposals_per_edge × quota); a
/// silent wrap can collapse the budget to ~0 and make a sampler return an
/// empty graph, so budget math saturates instead.
inline uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a != 0 && b > std::numeric_limits<uint64_t>::max() / a) {
    return std::numeric_limits<uint64_t>::max();
  }
  return a * b;
}

/// a + b clamped to UINT64_MAX instead of wrapping.
inline uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  const uint64_t sum = a + b;
  return sum < a ? std::numeric_limits<uint64_t>::max() : sum;
}

}  // namespace agmdp::util

#include "src/util/fault_injector.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace agmdp::util {

std::atomic<bool> FaultInjector::armed_{false};

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* created = new FaultInjector();
    if (const char* spec = std::getenv("AGMDP_FAULTS");
        spec != nullptr && spec[0] != '\0') {
      Status st = created->ArmFromSpec(spec);
      if (!st.ok()) {
        std::fprintf(stderr, "AGMDP_FAULTS ignored: %s\n",
                     st.ToString().c_str());
      }
    }
    return created;
  }();
  return *injector;
}

Status FaultInjector::Arm(const std::string& point, uint64_t nth,
                          FaultKind kind) {
  if (point.empty()) return Status::InvalidArgument("empty fault point name");
  if (nth == 0) {
    return Status::InvalidArgument("fault point '" + point +
                                   "': hit count is 1-based, got 0");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Point& entry = points_[point];
  entry.nth = nth;
  entry.kind = kind;
  entry.fired = false;
  armed_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find_first_of(",;", begin);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(begin, end - begin);
    begin = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault spec item '" + item +
                                     "' is not point=N[:kind]");
    }
    const std::string point = item.substr(0, eq);
    std::string count = item.substr(eq + 1);
    FaultKind kind = FaultKind::kError;
    if (const size_t colon = count.find(':'); colon != std::string::npos) {
      const std::string name = count.substr(colon + 1);
      count.resize(colon);
      if (name == "error") {
        kind = FaultKind::kError;
      } else if (name == "torn") {
        kind = FaultKind::kTornWrite;
      } else if (name == "exit") {
        kind = FaultKind::kExit;
      } else {
        return Status::InvalidArgument("fault spec item '" + item +
                                       "': unknown kind '" + name + "'");
      }
    }
    char* parse_end = nullptr;
    const unsigned long long nth = std::strtoull(count.c_str(), &parse_end, 10);
    if (count.empty() || parse_end == nullptr || *parse_end != '\0') {
      return Status::InvalidArgument("fault spec item '" + item +
                                     "': bad hit count '" + count + "'");
    }
    Status st = Arm(point, nth, kind);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

uint64_t FaultInjector::Hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

FaultAction FaultInjector::Poll(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return FaultAction{};
  Point& entry = it->second;
  ++entry.hits;
  if (entry.fired || entry.hits != entry.nth) return FaultAction{};
  entry.fired = true;
  if (entry.kind == FaultKind::kExit) {
    // Simulate a crash at this instruction: no destructors, no stream
    // flushing, no atexit handlers — just like a kill -9 landing here.
    ::_exit(kExitCode);
  }
  return FaultAction{true, entry.kind};
}

Status CheckFault(const char* point) {
  FaultAction fault = PollFault(point);
  if (!fault.fire) return Status::OK();
  return Status::IoError(std::string("injected fault at '") + point + "'");
}

}  // namespace agmdp::util

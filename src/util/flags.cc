#include "src/util/flags.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace agmdp::util {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      flags.values_[arg] = "true";  // bare boolean flag
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(),
                                                       nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback
                             : std::strtod(it->second.c_str(), nullptr);
}

Result<int64_t> Flags::GetCheckedInt(const std::string& name,
                                     int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("--" + name + "=" + text +
                                   " is not an integer");
  }
  return static_cast<int64_t>(value);
}

Result<double> Flags::GetCheckedDouble(const std::string& name,
                                       double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("--" + name + "=" + text +
                                   " is not a number");
  }
  return value;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<double> Flags::GetDoubleList(
    const std::string& name, const std::vector<double>& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(std::strtod(token.c_str(), nullptr));
  }
  return out.empty() ? fallback : out;
}

std::vector<std::string> Flags::GetStringList(
    const std::string& name, const std::vector<std::string>& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::string> out;
  std::stringstream ss(it->second);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out.empty() ? fallback : out;
}

}  // namespace agmdp::util

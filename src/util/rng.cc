#include "src/util/rng.h"

#include <cmath>

#include "src/util/check.h"

namespace agmdp::util {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // Guard against an all-zero state (cannot happen with SplitMix64, but the
  // invariant is cheap to enforce).
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformIndex(uint64_t n) {
  AGMDP_CHECK(n > 0);
  // Lemire's nearly-divisionless method: map the 64-bit draw to [0, n) via
  // the high half of a 128-bit product, rejecting the (rare) low-half
  // values that would bias the result. The common path costs one multiply;
  // the two integer divisions of the classic modulo-rejection scheme only
  // run when a rejection check is actually needed. Exactly uniform, like
  // the scheme it replaces (draw values differ; every consumer derives its
  // fixtures at runtime).
  unsigned __int128 m = static_cast<unsigned __int128>(Next()) *
                        static_cast<unsigned __int128>(n);
  auto low = static_cast<uint64_t>(m);
  if (low < n) {
    const uint64_t threshold = (0ULL - n) % n;
    while (low < threshold) {
      m = static_cast<unsigned __int128>(Next()) *
          static_cast<unsigned __int128>(n);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  AGMDP_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformIndex(span));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Laplace(double scale) {
  AGMDP_CHECK(scale > 0.0);
  // Inverse CDF on u in (-1/2, 1/2).
  double u = UniformDouble() - 0.5;
  // Avoid log(0) when u == -0.5 exactly.
  double a = 1.0 - 2.0 * std::fabs(u);
  if (a <= 0.0) a = 0x1.0p-53;
  double sign = (u >= 0.0) ? 1.0 : -1.0;
  return -sign * scale * std::log(a);
}

double Rng::Exponential(double rate) {
  AGMDP_CHECK(rate > 0.0);
  double u = UniformDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::Gaussian() {
  // Box-Muller; one value per call (the twin is discarded for simplicity).
  double u1 = UniformDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

uint64_t Rng::Geometric(double p) {
  AGMDP_CHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = UniformDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::Fork() { return Rng(Next()); }

Rng Rng::Substream(uint64_t base_seed, uint64_t stream_index) {
  // Jump the SplitMix64 walk `stream_index` steps past `base_seed` (the
  // walk advances by the golden-ratio gamma, so the jump is closed-form),
  // then push the landing point through one full SplitMix64 mix before
  // seeding. Without the mix, adjacent stream indices would hand the
  // xoshiro constructor overlapping 4-word seeding windows (75% shared
  // state); the avalanche step decorrelates neighboring shards.
  uint64_t jumped = base_seed + stream_index * 0x9e3779b97f4a7c15ULL;
  return Rng(SplitMix64(&jumped));
}

}  // namespace agmdp::util

#include "src/util/alias_sampler.h"

#include <cmath>

#include "src/util/check.h"

namespace agmdp::util {

Result<AliasSampler> AliasSampler::Build(const std::vector<double>& weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("AliasSampler: empty weight vector");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument(
          "AliasSampler: weights must be finite and non-negative");
    }
    sum += w;
  }
  if (sum <= 0.0) {
    return Status::InvalidArgument("AliasSampler: weights sum to zero");
  }

  const size_t n = weights.size();
  AliasSampler sampler;
  sampler.buckets_.assign(n, Bucket{});
  sampler.mass_.assign(n, 0.0);

  // Vose's algorithm: split scaled masses into "small" (< 1) and "large"
  // (>= 1) worklists and pair each small bucket with a large donor.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sampler.mass_[i] = weights[i] / sum;
    scaled[i] = sampler.mass_[i] * static_cast<double>(n);
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    sampler.buckets_[s].prob = scaled[s];
    sampler.buckets_[s].alias = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  // Numerical leftovers: everything remaining gets probability 1 of itself.
  for (uint32_t l : large) sampler.buckets_[l].prob = 1.0;
  for (uint32_t s : small) sampler.buckets_[s].prob = 1.0;

  return sampler;
}

}  // namespace agmdp::util

// Memory-mapped file wrapper (POSIX mmap) for the binary graph container.
//
// Two modes:
//   * OpenReadOnly    — map an existing file PROT_READ / MAP_SHARED. The
//     mmap-backed CsrGraph points straight into this mapping; a
//     shared_ptr<MappedFile> travels with the snapshot so the mapping
//     outlives every view into it.
//   * CreateReadWrite — create (truncate) a file of a fixed size and map
//     it writable. The container writer and the streaming text→binary
//     converter fill sections in place through this mapping, so a convert
//     never materializes the neighbor arrays in heap RAM.
//
// The wrapper is move-only; the destructor unmaps and closes.
#pragma once

#include <cstdint>
#include <string>

#include "src/util/status.h"

namespace agmdp::util {

class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  ~MappedFile();

  /// Maps an existing file read-only. A zero-length file yields a valid
  /// object with data() == nullptr and size() == 0.
  static Result<MappedFile> OpenReadOnly(const std::string& path);

  /// Creates (or truncates) `path`, sizes it to `size` bytes and maps it
  /// read-write. The mapping is MAP_SHARED: stores land in the file.
  static Result<MappedFile> CreateReadWrite(const std::string& path,
                                            uint64_t size);

  /// Maps an existing file read-write at its current size (no truncate) —
  /// used to patch checksums in place (RecomputeBinaryGraphChecksums).
  static Result<MappedFile> OpenReadWrite(const std::string& path);

  const uint8_t* data() const { return data_; }
  /// Writable view; only valid for CreateReadWrite mappings.
  uint8_t* mutable_data() { return writable_ ? data_ : nullptr; }
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Flushes a writable mapping to disk (msync). No-op when read-only.
  Status Sync();

 private:
  void Reset() noexcept;

  uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  bool writable_ = false;
  std::string path_;
};

}  // namespace agmdp::util

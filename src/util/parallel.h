// Deterministic parallelism utilities — the ONE threading layer of the
// library (DESIGN.md "Determinism contract" / "Hot-path memory layout").
//
// Two execution styles share it:
//   * ParallelNodeRanges / ParallelTally — spawn-per-call static partitions
//     for the read-only analytics kernels: work is split into contiguous
//     ranges of [0, n); every output slot is written by exactly one range,
//     and floating-point reductions happen OUTSIDE this helper,
//     sequentially, in a fixed order.
//   * WorkerPool — a persistent pool for the sampler hot path, where a
//     single AGM sample dispatches many small task batches (one sharded
//     proposal pass plus one Θ'F measurement per acceptance iteration) and
//     spawn-per-call thread creation would dominate the batch cost.
//
// Neither style owns any util::Rng: randomness, when present, comes from
// fixed per-task substreams chosen by the caller, so results are
// bitwise-identical at any thread count.
#pragma once

#if defined(__linux__)
#include <sched.h>
#endif

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace agmdp::util {

/// CPUs actually available to this process — the affinity mask (cpuset /
/// taskset / container quota), not the machine's core count.
/// hardware_concurrency() reports every core in the box, so a pool sized by
/// it inside a 4-CPU cgroup on a 128-core host would spawn 128 workers
/// timeslicing over 4 CPUs. Cached after the first call (affinity changes
/// mid-process are rare and only affect default sizing, never results).
inline int AvailableConcurrency() {
  static const int cached = [] {
#if defined(__linux__)
    cpu_set_t mask;
    CPU_ZERO(&mask);
    if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
      const int count = CPU_COUNT(&mask);
      if (count > 0) return count;
    }
#endif
    return static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }();
  return cached;
}

/// Resolves a thread-count request: any value <= 0 selects the available
/// concurrency (the process affinity mask, minimum 1); positive values are
/// returned as-is.
inline int ResolveThreadCount(int threads) {
  if (threads > 0) return threads;
  return AvailableConcurrency();
}

/// Invokes fn(begin, end) over contiguous ranges covering [0, n), on up to
/// `threads` workers (resolved via ResolveThreadCount; capped at n). fn must
/// only write to slots its range owns, or accumulate into order-insensitive
/// (integer) totals; it runs inline when one worker suffices.
template <typename Fn>
void ParallelNodeRanges(uint64_t n, int threads, Fn&& fn) {
  const uint64_t workers =
      std::min<uint64_t>(static_cast<uint64_t>(ResolveThreadCount(threads)), n);
  if (workers <= 1) {
    if (n > 0) fn(uint64_t{0}, n);
    return;
  }
  const uint64_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (uint64_t w = 1; w < workers; ++w) {
    const uint64_t begin = w * chunk;
    const uint64_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([begin, end, &fn] { fn(begin, end); });
  }
  fn(uint64_t{0}, std::min(n, chunk));
  for (std::thread& worker : pool) worker.join();
}

/// Per-worker tallies merged under one lock: every worker range builds
/// `make_local()`, fills it via `body(local, begin, end)`, and `merge(local)`
/// folds it into the caller's shared total — the lock lives here, so tally
/// kernels cannot forget it. Integer tallies merge order-insensitively,
/// making the result identical at any thread count.
template <typename MakeLocal, typename Body, typename Merge>
void ParallelTally(uint64_t n, int threads, MakeLocal&& make_local,
                   Body&& body, Merge&& merge) {
  std::mutex merge_mutex;
  ParallelNodeRanges(n, threads, [&](uint64_t begin, uint64_t end) {
    auto local = make_local();
    body(local, begin, end);
    const std::lock_guard<std::mutex> lock(merge_mutex);
    merge(local);
  });
}

/// \brief Persistent worker pool dispatching indexed task batches.
///
/// Construction spawns `ResolveThreadCount(threads) - 1` workers that park
/// on a condition variable between batches; `Run(num_tasks, fn)` hands out
/// task indices 0..num_tasks-1 through a shared atomic counter (the calling
/// thread participates) and returns once every task has finished. Which
/// worker executes which index is unspecified — callers own determinism by
/// making each task a pure function of its index (fixed Rng substreams,
/// disjoint output slots) and by merging results in index order themselves.
class WorkerPool {
 public:
  explicit WorkerPool(int threads) {
    const int n = std::max(1, ResolveThreadCount(threads));
    num_workers_ = n;
    workers_.reserve(n - 1);
    for (int i = 0; i < n - 1; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers, including the thread that calls Run.
  int num_workers() const { return num_workers_; }

  /// Runs fn(0), ..., fn(num_tasks - 1), each exactly once, and returns
  /// when all have completed. fn must not throw and must not call Run on
  /// the same pool (no nesting).
  void Run(int num_tasks, const std::function<void(int)>& fn) {
    if (num_tasks <= 0) return;
    if (workers_.empty() || num_tasks == 1) {
      for (int i = 0; i < num_tasks; ++i) fn(i);
      return;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      // A worker from the previous batch may still be draining its final
      // (empty) counter fetch; batch state is only mutated once none are.
      idle_.wait(lock, [this] { return active_ == 0; });
      fn_ = &fn;
      num_tasks_ = num_tasks;
      remaining_.store(num_tasks, std::memory_order_relaxed);
      next_.store(0, std::memory_order_relaxed);
      ++batch_;
    }
    wake_.notify_all();
    Drain();
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [this] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
  }

 private:
  // Pulls task indices until the batch counter is exhausted.
  void Drain() {
    const int limit = num_tasks_;
    const std::function<void(int)>& fn = *fn_;
    for (;;) {
      const int i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= limit) return;
      fn(i);
      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        { const std::lock_guard<std::mutex> lock(mu_); }
        done_.notify_all();
      }
    }
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      wake_.wait(lock, [&] { return shutdown_ || batch_ != seen; });
      if (shutdown_) return;
      seen = batch_;
      ++active_;
      lock.unlock();
      Drain();
      lock.lock();
      if (--active_ == 0) idle_.notify_one();
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::condition_variable done_;
  uint64_t batch_ = 0;
  int active_ = 0;
  bool shutdown_ = false;
  const std::function<void(int)>* fn_ = nullptr;
  int num_tasks_ = 0;
  std::atomic<int> next_{0};
  std::atomic<int> remaining_{0};
  std::vector<std::thread> workers_;
  int num_workers_ = 1;
};

}  // namespace agmdp::util

// Deterministic static parallelism for the read-only analytics kernels.
//
// The contract (DESIGN.md "The snapshot layer"): work is split into
// contiguous ranges of [0, n); every output slot is written by exactly one
// range, and floating-point reductions happen OUTSIDE this helper,
// sequentially, in a fixed order — so kernel results are bitwise-identical
// at any thread count. No util::Rng is involved anywhere on this path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace agmdp::util {

/// Resolves a thread-count request: any value <= 0 selects the hardware
/// concurrency (minimum 1); positive values are returned as-is.
inline int ResolveThreadCount(int threads) {
  if (threads > 0) return threads;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

/// Invokes fn(begin, end) over contiguous ranges covering [0, n), on up to
/// `threads` workers (resolved via ResolveThreadCount; capped at n). fn must
/// only write to slots its range owns, or accumulate into order-insensitive
/// (integer) totals; it runs inline when one worker suffices.
template <typename Fn>
void ParallelNodeRanges(uint64_t n, int threads, Fn&& fn) {
  const uint64_t workers =
      std::min<uint64_t>(static_cast<uint64_t>(ResolveThreadCount(threads)), n);
  if (workers <= 1) {
    if (n > 0) fn(uint64_t{0}, n);
    return;
  }
  const uint64_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (uint64_t w = 1; w < workers; ++w) {
    const uint64_t begin = w * chunk;
    const uint64_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([begin, end, &fn] { fn(begin, end); });
  }
  fn(uint64_t{0}, std::min(n, chunk));
  for (std::thread& worker : pool) worker.join();
}

/// Per-worker tallies merged under one lock: every worker range builds
/// `make_local()`, fills it via `body(local, begin, end)`, and `merge(local)`
/// folds it into the caller's shared total — the lock lives here, so tally
/// kernels cannot forget it. Integer tallies merge order-insensitively,
/// making the result identical at any thread count.
template <typename MakeLocal, typename Body, typename Merge>
void ParallelTally(uint64_t n, int threads, MakeLocal&& make_local,
                   Body&& body, Merge&& merge) {
  std::mutex merge_mutex;
  ParallelNodeRanges(n, threads, [&](uint64_t begin, uint64_t end) {
    auto local = make_local();
    body(local, begin, end);
    const std::lock_guard<std::mutex> lock(merge_mutex);
    merge(local);
  });
}

}  // namespace agmdp::util

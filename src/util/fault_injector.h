// Deterministic fault injection for crash, torn-write, and partial-IO tests.
//
// Durability code is only as trustworthy as the failures it has actually
// survived. This injector lets tests (and CI smokes) arm named fault points —
// "registry.charge.fsync", "server.send", "container.sync" — so the exact
// write/fsync/rename/send that should fail, fails, on the Nth hit, either as
// a typed error, as a torn (partial) write, or as an immediate process exit
// that simulates a crash at that instruction.
//
// The disarmed path costs one relaxed atomic load and no allocation, so
// production call sites can poll unconditionally:
//
//   if (auto fault = util::PollFault("registry.charge.fsync"); fault.fire) ...
//
// Arming is either programmatic (tests call FaultInjector::Global().Arm) or
// environmental: AGMDP_FAULTS="registry.commit.fsync=1:exit" arms the first
// hit of that point to _exit the process — which is how the CI crash-recovery
// smoke kills a live daemon in the middle of a journal append.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace agmdp::util {

enum class FaultKind : int {
  /// The call site surfaces a typed IoError without performing the IO.
  kError = 0,
  /// The call site writes a deliberately truncated prefix of the payload,
  /// then surfaces an IoError — a torn write, as a power loss would leave.
  kTornWrite = 1,
  /// The process _exits immediately inside the hit (no destructors, no
  /// flushing) — a crash at exactly this instruction.
  kExit = 2,
};

/// What a call site should do at a polled fault point.
struct FaultAction {
  bool fire = false;
  FaultKind kind = FaultKind::kError;
};

/// Process-wide registry of armed fault points. Thread-safe.
class FaultInjector {
 public:
  /// The singleton. First access arms any points named in $AGMDP_FAULTS.
  static FaultInjector& Global();

  /// The exit code used by FaultKind::kExit, chosen to be distinguishable
  /// from a clean exit (0), a runtime failure (1), and a signal death.
  static constexpr int kExitCode = 42;

  /// Arms `point` to fire on its `nth` hit (1-based) with `kind`. A point
  /// fires exactly once, then stays spent until Reset/re-Arm.
  Status Arm(const std::string& point, uint64_t nth, FaultKind kind);

  /// Arms from a spec string: "point=N[:error|:torn|:exit]" joined by ','
  /// or ';'. Empty spec is a no-op. Malformed specs are InvalidArgument.
  Status ArmFromSpec(const std::string& spec);

  /// Disarms every point and clears hit counters.
  void Reset();

  /// Total times `point` was polled while the injector was armed.
  uint64_t Hits(const std::string& point) const;

  /// Records a hit on `point` and returns the action. FaultKind::kExit is
  /// executed here (the call never returns in that case).
  FaultAction Poll(const char* point);

  /// True when any point is armed — the hot-path gate.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

 private:
  FaultInjector() = default;

  struct Point {
    uint64_t nth = 1;
    FaultKind kind = FaultKind::kError;
    uint64_t hits = 0;
    bool fired = false;
  };

  static std::atomic<bool> armed_;

  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
};

/// Hot-path poll: free when nothing is armed anywhere in the process.
inline FaultAction PollFault(const char* point) {
  if (!FaultInjector::Armed()) return FaultAction{};
  return FaultInjector::Global().Poll(point);
}

/// Convenience for call sites with no partial-write semantics: kError and
/// kTornWrite both become a typed IoError naming the point; kExit exits.
Status CheckFault(const char* point);

}  // namespace agmdp::util

// Minimal command-line flag parsing for example and bench binaries.
//
// Supports "--name=value" plus bare boolean "--name" (the space-separated
// form is deliberately unsupported: without a flag registry it is ambiguous
// against positional arguments). Non-flag arguments are collected as
// positionals.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace agmdp::util {

/// \brief Parsed command-line flags with typed, defaulted getters.
class Flags {
 public:
  /// Parses argv (skipping argv[0]).
  static Flags Parse(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  /// Strict variants for request-path validation: an absent flag yields the
  /// fallback, but a present flag whose value is not entirely a number
  /// ("--threads=abc", "--seed=", "--samples=3x") is a typed
  /// InvalidArgument naming the flag — GetInt would silently read it as 0.
  Result<int64_t> GetCheckedInt(const std::string& name,
                                int64_t fallback) const;
  Result<double> GetCheckedDouble(const std::string& name,
                                  double fallback) const;

  /// Parses a comma-separated list of doubles, e.g. "--eps=0.1,0.2,0.5".
  std::vector<double> GetDoubleList(const std::string& name,
                                    const std::vector<double>& fallback) const;

  /// Parses a comma-separated list of strings, e.g. "--models=fcl,tricycle"
  /// (empty tokens are dropped).
  std::vector<std::string> GetStringList(
      const std::string& name, const std::vector<std::string>& fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace agmdp::util

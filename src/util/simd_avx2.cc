// AVX2 arm of the util::simd helpers. This TU is the only one in src/util
// compiled with -mavx2 (plus -DAGMDP_HAVE_AVX2); when the build disables
// the arm, the same TU compiles scalar fallbacks so the dispatch symbols
// always exist.
#include "src/util/simd.h"

#ifdef AGMDP_HAVE_AVX2
#include <immintrin.h>
#endif

namespace agmdp::util::internal {

bool Avx2Compiled() {
#ifdef AGMDP_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

#ifdef AGMDP_HAVE_AVX2

void SquaredSqrtDiffAvx2(const double* p, const double* q, size_t n,
                         double* out) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // max(x, +0.0) with x as src1: maxpd returns src2 (+0.0) when x is NaN
    // or -0.0, exactly like the scalar std::max(0.0, x).
    const __m256d a =
        _mm256_sqrt_pd(_mm256_max_pd(_mm256_loadu_pd(p + i), zero));
    const __m256d b =
        _mm256_sqrt_pd(_mm256_max_pd(_mm256_loadu_pd(q + i), zero));
    const __m256d d = _mm256_sub_pd(a, b);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(d, d));
  }
  if (i < n) SquaredSqrtDiffScalar(p + i, q + i, n - i, out + i);
}

#else

void SquaredSqrtDiffAvx2(const double* p, const double* q, size_t n,
                         double* out) {
  SquaredSqrtDiffScalar(p, q, n, out);
}

#endif  // AGMDP_HAVE_AVX2

}  // namespace agmdp::util::internal

// Open-addressing hash tables over packed 64-bit edge keys — the
// flat-memory replacement for std::unordered_set / std::unordered_map on
// the sampler hot path.
//
// Layout: one contiguous power-of-two array of keys (plus a parallel value
// array for the map), linear probing, and backward-shift deletion (no
// tombstones, so probe chains never degrade under the insert/erase churn
// of the rewiring models). A membership test costs a handful of adjacent
// cache lines instead of a node allocation plus a pointer chase per
// bucket, which is where the FCL/TriCycLe inner loops spent their time
// before this existed. FlatEdgeSet and FlatEdgeMap share one probing core
// (internal::FlatEdgeTable) so the deletion-shift invariant and growth
// policy cannot drift between them.
//
// Key 0 is reserved as the empty-slot sentinel. Packed edge keys cannot be
// 0: graph::PackEdge(u, v) == 0 only for the self-loop {0, 0}, which every
// caller rejects before deduplicating.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/check.h"

namespace agmdp::util {

namespace internal {

/// Shared probing core: key storage, hashing, lookup, insert-or-find,
/// backward-shift erase, and growth under a 5/8 max load factor. `Value`
/// is void for a set; otherwise a parallel slot-indexed value array is
/// maintained through every shift and rehash.
template <typename Value>
class FlatEdgeTable {
 public:
  static constexpr size_t kNpos = static_cast<size_t>(-1);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return keys_.size(); }

  bool Contains(uint64_t key) const { return FindSlot(key) != kNpos; }

  /// Drops every key, keeping the current capacity.
  void Clear() {
    std::fill(keys_.begin(), keys_.end(), uint64_t{0});
    size_ = 0;
  }

  /// Grows the table so `expected` keys fit under the 5/8 load limit.
  /// Overflow-safe: absurd hints stop at the largest representable
  /// power-of-two capacity instead of wrapping (callers bound `expected`
  /// semantically — e.g. by the maximum possible edge count).
  void Reserve(size_t expected) {
    size_t want = kMinCapacity;
    while (expected > want / 8 * 5 && want < kMaxCapacity) want *= 2;
    if (want > keys_.size()) Rehash(want);
  }

  /// Invokes fn(key) for every stored key, in unspecified table order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint64_t key : keys_) {
      if (key != 0) fn(key);
    }
  }

 protected:
  static constexpr size_t kMinCapacity = 16;
  static constexpr size_t kMaxCapacity = static_cast<size_t>(1) << 62;
  static constexpr bool kHasValue = !std::is_void_v<Value>;
  // The value array element; an empty placeholder type keeps the set's
  // template instantiation value-free without a second implementation.
  struct NoValue {};
  using Stored = std::conditional_t<kHasValue, Value, NoValue>;

  /// Slot of `key`, or kNpos if absent.
  size_t FindSlot(uint64_t key) const {
    if (keys_.empty()) return kNpos;
    const size_t mask = keys_.size() - 1;
    size_t i = Hash(key) & mask;
    while (keys_[i] != 0) {
      if (keys_[i] == key) return i;
      i = (i + 1) & mask;
    }
    return kNpos;
  }

  /// Inserts `key` if absent; returns (slot, inserted). `key` must be
  /// non-zero (0 is the empty-slot sentinel).
  std::pair<size_t, bool> InsertSlot(uint64_t key) {
    AGMDP_CHECK(key != 0);
    if ((size_ + 1) * 8 > keys_.size() * 5) {
      Rehash(keys_.empty() ? kMinCapacity : keys_.size() * 2);
    }
    const size_t mask = keys_.size() - 1;
    size_t i = Hash(key) & mask;
    while (keys_[i] != 0) {
      if (keys_[i] == key) return {i, false};
      i = (i + 1) & mask;
    }
    keys_[i] = key;
    ++size_;
    return {i, true};
  }

  /// Removes `key`; returns false if it was not present. Deletion shifts
  /// the tail of the probe chain back over the hole (values move with
  /// their keys), so no tombstones are left behind and lookups stay
  /// O(chain length) forever.
  bool EraseKey(uint64_t key) {
    if (keys_.empty()) return false;
    const size_t mask = keys_.size() - 1;
    size_t i = Hash(key) & mask;
    while (keys_[i] != key) {
      if (keys_[i] == 0) return false;
      i = (i + 1) & mask;
    }
    // Backward-shift: walk the chain after the hole; any key whose home
    // slot does not lie strictly inside (i, j] may be moved into the hole.
    size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      const uint64_t k = keys_[j];
      if (k == 0) break;
      const size_t home = Hash(k) & mask;
      // Cyclic distance from home to the occupied slot j vs to the hole i:
      // the key can fill the hole iff the hole is on its probe path.
      if (((j - home) & mask) >= ((j - i) & mask)) {
        keys_[i] = k;
        if constexpr (kHasValue) values_[i] = values_[j];
        i = j;
      }
    }
    keys_[i] = 0;
    --size_;
    return true;
  }

  std::vector<uint64_t> keys_;
  std::vector<Stored> values_;  // slot-parallel; unused (empty) for sets
  size_t size_ = 0;

 private:
  // SplitMix64 finalizer: packed edges are highly structured (node ids in
  // both halves), so the table index needs a full-avalanche mix.
  static size_t Hash(uint64_t key) {
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(key ^ (key >> 31));
  }

  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    keys_.assign(new_capacity, 0);
    std::vector<Stored> old_values;
    if constexpr (kHasValue) {
      old_values = std::move(values_);
      values_.assign(new_capacity, Stored{});
    }
    const size_t mask = new_capacity - 1;
    for (size_t s = 0; s < old_keys.size(); ++s) {
      const uint64_t key = old_keys[s];
      if (key == 0) continue;
      size_t i = Hash(key) & mask;
      while (keys_[i] != 0) i = (i + 1) & mask;
      keys_[i] = key;
      if constexpr (kHasValue) values_[i] = old_values[s];
    }
  }
};

}  // namespace internal

/// \brief Flat linear-probing set of non-zero uint64_t keys.
class FlatEdgeSet : public internal::FlatEdgeTable<void> {
 public:
  FlatEdgeSet() = default;

  /// Pre-sizes the table for `expected` keys without rehashing on the way.
  explicit FlatEdgeSet(size_t expected) { Reserve(expected); }

  /// Inserts `key`; returns false if it was already present.
  bool Insert(uint64_t key) { return InsertSlot(key).second; }

  /// Removes `key`; returns false if it was not present.
  bool Erase(uint64_t key) { return EraseKey(key); }
};

/// \brief Flat linear-probing map from non-zero uint64_t keys to uint64_t
/// values — the companion of FlatEdgeSet for hot paths that need a payload
/// per edge (the edge-age queue's latest-sequence index).
class FlatEdgeMap : public internal::FlatEdgeTable<uint64_t> {
 public:
  FlatEdgeMap() = default;

  /// Sets `key` -> `value`, inserting or overwriting.
  void Put(uint64_t key, uint64_t value) {
    values_[InsertSlot(key).first] = value;
  }

  /// Returns the value stored for `key`, or nullptr if absent. The pointer
  /// is invalidated by the next mutation.
  const uint64_t* Find(uint64_t key) const {
    const size_t slot = FindSlot(key);
    return slot == kNpos ? nullptr : &values_[slot];
  }

  /// Removes `key`; returns false if it was not present.
  bool Erase(uint64_t key) { return EraseKey(key); }
};

}  // namespace agmdp::util

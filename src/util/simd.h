// Runtime ISA dispatch for the SIMD-vectorized analytics kernels
// (DESIGN.md "Fused evaluation kernel").
//
// Only *element-exact* operations are ever vectorized: integer arithmetic,
// gathers, compares, and IEEE correctly-rounded double sqrt — operations
// whose vector lanes produce bit-for-bit the same value as the scalar
// expression on the same element. Floating-point *accumulation chains* are
// never reordered by the vector arms, so every dispatched kernel is
// bitwise-identical across scalar and AVX2 (and therefore across machines
// with and without AVX2). The differential tests in fused_eval_test.cc
// pin both arms against the legacy kernels.
//
// Dispatch resolution:
//   * kAuto picks the best arm compiled in AND supported by the CPU,
//     capped to scalar when the AGMDP_DISABLE_AVX2 environment variable is
//     set (non-empty, not "0") — the switch the CI scalar leg flips.
//   * An explicit kAvx2 request is clamped to kScalar when the arm is
//     unavailable or disabled, never the other way around.
// The AVX2 arm lives in separately-flagged TUs (compiled with -mavx2 and
// -DAGMDP_HAVE_AVX2; see CMakeLists.txt), so the rest of the library can
// be built for the baseline ISA.
#pragma once

#include <cstddef>

namespace agmdp::util {

enum class SimdIsa {
  kAuto = 0,  // resolve to the best available arm at runtime
  kScalar,
  kAvx2,
};

/// Human-readable arm name ("scalar" / "avx2"; "auto" only for kAuto).
const char* SimdIsaName(SimdIsa isa);

/// True when the AVX2 arm is compiled in and the CPU reports AVX2 support.
/// Ignores the environment switch — use ResolveSimdIsa for that.
bool Avx2Supported();

/// Resolves a requested arm per the dispatch rules above. Never returns
/// kAuto.
SimdIsa ResolveSimdIsa(SimdIsa requested);

/// The arm auto-dispatched kernels run on right now.
inline SimdIsa ActiveSimdIsa() { return ResolveSimdIsa(SimdIsa::kAuto); }

/// Pins ResolveSimdIsa(kAuto) to `isa` so tests and benches can drive the
/// full evaluation stack down one dispatch arm; kAuto restores detection.
/// The pin itself is clamped to the supported arms. Not thread-safe against
/// concurrently dispatching kernels — flip it only between evaluations.
void SetSimdIsaOverride(SimdIsa isa);

/// out[i] = (sqrt(max(p[i], 0)) - sqrt(max(q[i], 0)))^2 on the active arm.
/// Element-exact (VSQRTPD is correctly rounded, as std::sqrt is), so both
/// arms produce bitwise-identical outputs; the Hellinger accumulation over
/// `out` stays a sequential index-order sum at the caller.
void SquaredSqrtDiff(const double* p, const double* q, size_t n, double* out);

namespace internal {

// Implemented in simd_avx2.cc: true only when that TU was compiled with
// the AVX2 flags (AGMDP_HAVE_AVX2).
bool Avx2Compiled();

void SquaredSqrtDiffScalar(const double* p, const double* q, size_t n,
                           double* out);
// Falls back to the scalar body when AGMDP_HAVE_AVX2 was not defined.
void SquaredSqrtDiffAvx2(const double* p, const double* q, size_t n,
                         double* out);

}  // namespace internal

}  // namespace agmdp::util

// Deterministic random number generation for the whole library.
//
// Every stochastic routine in agmdp takes an explicit Rng&; given the same
// seed the entire pipeline (graph generation, DP noise, model sampling) is
// reproducible. The generator is xoshiro256++ seeded via SplitMix64 — fast,
// high quality, and trivially copyable for sub-streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace agmdp::util {

/// \brief xoshiro256++ pseudo-random generator with distribution helpers.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns a uniform integer in [0, n). Requires n > 0.
  uint64_t UniformIndex(uint64_t n);

  /// Returns a uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns true with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Samples Laplace(0, scale): density (1/2b) exp(-|x|/b). Requires
  /// scale > 0.
  double Laplace(double scale);

  /// Samples Exponential(rate): density rate * exp(-rate x). Requires
  /// rate > 0.
  double Exponential(double rate);

  /// Samples a standard normal via Box-Muller.
  double Gaussian();

  /// Samples Geometric over {0,1,2,...} with success probability p in (0,1]:
  /// P[X = k] = (1-p)^k p.
  uint64_t Geometric(double p);

  /// Returns an independent child generator (seeded from this stream), for
  /// handing to parallel or repeated trials.
  Rng Fork();

  /// Returns the generator for sub-stream `stream_index` of the family
  /// rooted at `base_seed`: the xoshiro256++ state is seeded from the
  /// SplitMix64 state reached by jumping `stream_index` steps past
  /// `base_seed`. A pure function of its arguments, so parallel workers can
  /// derive their streams without synchronization, and a fixed
  /// (base, index) -> stream mapping makes sharded computations
  /// bitwise-reproducible regardless of how shards are scheduled onto
  /// threads.
  static Rng Substream(uint64_t base_seed, uint64_t stream_index);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = UniformIndex(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace agmdp::util

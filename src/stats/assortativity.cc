#include "src/stats/assortativity.h"

#include <cmath>
#include <vector>

namespace agmdp::stats {

double DegreeAssortativity(const graph::Graph& g) {
  if (g.num_edges() == 0) return 0.0;
  // Pearson correlation over the 2m ordered endpoint pairs; accumulate
  // symmetric sums in one pass over edges.
  double sum_xy = 0.0, sum_x = 0.0, sum_x2 = 0.0;
  g.ForEachEdge([&](graph::NodeId u, graph::NodeId v) {
    const double du = g.Degree(u), dv = g.Degree(v);
    sum_xy += 2.0 * du * dv;
    sum_x += du + dv;
    sum_x2 += du * du + dv * dv;
  });
  const double count = 2.0 * static_cast<double>(g.num_edges());
  const double mean = sum_x / count;
  const double var = sum_x2 / count - mean * mean;
  if (var <= 0.0) return 0.0;
  const double cov = sum_xy / count - mean * mean;
  return cov / var;
}

double AttributeAssortativity(const graph::AttributedGraph& g) {
  if (g.num_edges() == 0) return 0.0;
  const uint32_t k = graph::NumNodeConfigs(g.num_attributes());
  // Mixing matrix e[a][b]: fraction of (ordered) edge endpoints with
  // configurations a and b.
  std::vector<double> mixing(static_cast<size_t>(k) * k, 0.0);
  g.structure().ForEachEdge([&](graph::NodeId u, graph::NodeId v) {
    const graph::AttrConfig a = g.attribute(u), b = g.attribute(v);
    mixing[static_cast<size_t>(a) * k + b] += 1.0;
    mixing[static_cast<size_t>(b) * k + a] += 1.0;
  });
  const double total = 2.0 * static_cast<double>(g.num_edges());
  for (double& x : mixing) x /= total;

  double trace = 0.0, squared = 0.0;
  for (uint32_t a = 0; a < k; ++a) {
    trace += mixing[static_cast<size_t>(a) * k + a];
    // (e^2)_aa summed over a = sum over a,b of e_ab * e_ba; e is symmetric.
    for (uint32_t b = 0; b < k; ++b) {
      const double e_ab = mixing[static_cast<size_t>(a) * k + b];
      squared += e_ab * e_ab;
    }
  }
  if (1.0 - squared <= 1e-12) return 0.0;  // single category: undefined -> 0
  return (trace - squared) / (1.0 - squared);
}

std::vector<double> PerAttributeHomophily(const graph::AttributedGraph& g) {
  std::vector<double> same(static_cast<size_t>(g.num_attributes()), 0.0);
  if (g.num_edges() == 0 || g.num_attributes() == 0) return same;
  g.structure().ForEachEdge([&](graph::NodeId u, graph::NodeId v) {
    const graph::AttrConfig agree = ~(g.attribute(u) ^ g.attribute(v));
    for (int a = 0; a < g.num_attributes(); ++a) {
      if ((agree >> a) & 1u) same[static_cast<size_t>(a)] += 1.0;
    }
  });
  const double m = static_cast<double>(g.num_edges());
  for (double& x : same) x /= m;
  return same;
}

}  // namespace agmdp::stats

#include "src/stats/assortativity.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/util/parallel.h"

namespace agmdp::stats {

namespace {

// Shared tail of both DegreeAssortativity paths: Pearson correlation over
// the 2m ordered endpoint pairs from the three accumulated sums.
double PearsonFromSums(double sum_xy, double sum_x, double sum_x2,
                       uint64_t num_edges) {
  const double count = 2.0 * static_cast<double>(num_edges);
  const double mean = sum_x / count;
  const double var = sum_x2 / count - mean * mean;
  if (var <= 0.0) return 0.0;
  const double cov = sum_xy / count - mean * mean;
  return cov / var;
}

// Shared tail of both AttributeAssortativity paths: Newman's coefficient
// from the integer-valued (exact) mixing tallies over ordered endpoints.
double NewmanFromMixing(const std::vector<double>& mixing, uint32_t k) {
  double trace = 0.0, squared = 0.0;
  for (uint32_t a = 0; a < k; ++a) {
    trace += mixing[static_cast<size_t>(a) * k + a];
    // (e^2)_aa summed over a = sum over a,b of e_ab * e_ba; e is symmetric.
    for (uint32_t b = 0; b < k; ++b) {
      const double e_ab = mixing[static_cast<size_t>(a) * k + b];
      squared += e_ab * e_ab;
    }
  }
  if (1.0 - squared <= 1e-12) return 0.0;  // single category: undefined -> 0
  return (trace - squared) / (1.0 - squared);
}

}  // namespace

double DegreeAssortativityFromSums(double sum_xy, double sum_x,
                                   double sum_x2, uint64_t num_edges) {
  if (num_edges == 0) return 0.0;
  return PearsonFromSums(sum_xy, sum_x, sum_x2, num_edges);
}

double AttributeAssortativityFromMixingCounts(
    const std::vector<uint64_t>& counts, uint32_t k, uint64_t num_edges) {
  if (num_edges == 0) return 0.0;
  const double total = 2.0 * static_cast<double>(num_edges);
  std::vector<double> mixing(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    mixing[i] = static_cast<double>(counts[i]) / total;
  }
  return NewmanFromMixing(mixing, k);
}

std::vector<double> PerAttributeHomophilyFromCounts(
    const std::vector<uint64_t>& counts, uint64_t num_edges) {
  std::vector<double> same(counts.size(), 0.0);
  if (num_edges == 0) return same;
  const double m = static_cast<double>(num_edges);
  for (size_t a = 0; a < counts.size(); ++a) {
    same[a] = static_cast<double>(counts[a]) / m;
  }
  return same;
}

double DegreeAssortativity(const graph::Graph& g) {
  if (g.num_edges() == 0) return 0.0;
  const graph::NodeId n = g.num_nodes();
  // Summation contract (see header): per-source-node partials over sorted
  // forward neighbors, reduced in node order.
  double sum_xy = 0.0, sum_x = 0.0, sum_x2 = 0.0;
  std::vector<graph::NodeId> forward;
  for (graph::NodeId u = 0; u < n; ++u) {
    forward.clear();
    for (graph::NodeId v : g.Neighbors(u)) {
      if (v > u) forward.push_back(v);
    }
    std::sort(forward.begin(), forward.end());
    const double du = g.Degree(u);
    double pxy = 0.0, px = 0.0, px2 = 0.0;
    for (graph::NodeId v : forward) {
      const double dv = g.Degree(v);
      pxy += 2.0 * du * dv;
      px += du + dv;
      px2 += du * du + dv * dv;
    }
    sum_xy += pxy;
    sum_x += px;
    sum_x2 += px2;
  }
  return PearsonFromSums(sum_xy, sum_x, sum_x2, g.num_edges());
}

double DegreeAssortativity(const graph::CsrGraph& g, int threads) {
  if (g.num_edges() == 0) return 0.0;
  const graph::NodeId n = g.num_nodes();
  // Per-node partials are written by exactly one worker; the node-order
  // reduce below matches the Graph path's chain exactly.
  std::vector<double> pxy(n), px(n), px2(n);
  util::ParallelNodeRanges(n, threads, [&](uint64_t begin, uint64_t end) {
    for (uint64_t ui = begin; ui < end; ++ui) {
      const auto u = static_cast<graph::NodeId>(ui);
      const double du = g.Degree(u);
      const graph::NeighborRange range = g.Neighbors(u);
      double a = 0.0, b = 0.0, c = 0.0;
      for (const graph::NodeId* v =
               std::upper_bound(range.begin(), range.end(), u);
           v != range.end(); ++v) {
        const double dv = g.Degree(*v);
        a += 2.0 * du * dv;
        b += du + dv;
        c += du * du + dv * dv;
      }
      pxy[ui] = a;
      px[ui] = b;
      px2[ui] = c;
    }
  });
  double sum_xy = 0.0, sum_x = 0.0, sum_x2 = 0.0;
  for (graph::NodeId u = 0; u < n; ++u) {
    sum_xy += pxy[u];
    sum_x += px[u];
    sum_x2 += px2[u];
  }
  return DegreeAssortativityFromSums(sum_xy, sum_x, sum_x2, g.num_edges());
}

double AttributeAssortativity(const graph::AttributedGraph& g) {
  if (g.num_edges() == 0) return 0.0;
  const uint32_t k = graph::NumNodeConfigs(g.num_attributes());
  // Mixing matrix e[a][b]: fraction of (ordered) edge endpoints with
  // configurations a and b. The tallies are integer-valued, hence exact.
  std::vector<double> mixing(static_cast<size_t>(k) * k, 0.0);
  g.structure().ForEachEdge([&](graph::NodeId u, graph::NodeId v) {
    const graph::AttrConfig a = g.attribute(u), b = g.attribute(v);
    mixing[static_cast<size_t>(a) * k + b] += 1.0;
    mixing[static_cast<size_t>(b) * k + a] += 1.0;
  });
  const double total = 2.0 * static_cast<double>(g.num_edges());
  for (double& x : mixing) x /= total;
  return NewmanFromMixing(mixing, k);
}

double AttributeAssortativity(const graph::AttributedCsrGraph& g,
                              int threads) {
  if (g.num_edges() == 0) return 0.0;
  const uint32_t k = graph::NumNodeConfigs(g.num_attributes);
  const graph::NodeId n = g.num_nodes();
  // Integer tallies merge order-free, so per-worker buffers reduce to the
  // same counts at any thread count.
  std::vector<uint64_t> counts(static_cast<size_t>(k) * k, 0);
  util::ParallelTally(
      n, threads, [&] { return std::vector<uint64_t>(counts.size(), 0); },
      [&](std::vector<uint64_t>& local, uint64_t begin, uint64_t end) {
        for (uint64_t ui = begin; ui < end; ++ui) {
          const auto u = static_cast<graph::NodeId>(ui);
          for (graph::NodeId v : g.structure.Neighbors(u)) {
            if (v <= u) continue;
            const graph::AttrConfig a = g.attribute(u), b = g.attribute(v);
            ++local[static_cast<size_t>(a) * k + b];
            ++local[static_cast<size_t>(b) * k + a];
          }
        }
      },
      [&](const std::vector<uint64_t>& local) {
        for (size_t i = 0; i < counts.size(); ++i) counts[i] += local[i];
      });
  return AttributeAssortativityFromMixingCounts(counts, k, g.num_edges());
}

std::vector<double> PerAttributeHomophily(const graph::AttributedGraph& g) {
  std::vector<double> same(static_cast<size_t>(g.num_attributes()), 0.0);
  if (g.num_edges() == 0 || g.num_attributes() == 0) return same;
  g.structure().ForEachEdge([&](graph::NodeId u, graph::NodeId v) {
    const graph::AttrConfig agree = ~(g.attribute(u) ^ g.attribute(v));
    for (int a = 0; a < g.num_attributes(); ++a) {
      if ((agree >> a) & 1u) same[static_cast<size_t>(a)] += 1.0;
    }
  });
  const double m = static_cast<double>(g.num_edges());
  for (double& x : same) x /= m;
  return same;
}

std::vector<double> PerAttributeHomophily(const graph::AttributedCsrGraph& g,
                                          int threads) {
  const auto w = static_cast<size_t>(g.num_attributes);
  std::vector<double> same(w, 0.0);
  if (g.num_edges() == 0 || w == 0) return same;
  const graph::NodeId n = g.num_nodes();
  std::vector<uint64_t> counts(w, 0);
  util::ParallelTally(
      n, threads, [&] { return std::vector<uint64_t>(w, 0); },
      [&](std::vector<uint64_t>& local, uint64_t begin, uint64_t end) {
        for (uint64_t ui = begin; ui < end; ++ui) {
          const auto u = static_cast<graph::NodeId>(ui);
          for (graph::NodeId v : g.structure.Neighbors(u)) {
            if (v <= u) continue;
            const graph::AttrConfig agree =
                ~(g.attribute(u) ^ g.attribute(v));
            for (size_t a = 0; a < w; ++a) {
              if ((agree >> a) & 1u) ++local[a];
            }
          }
        }
      },
      [&](const std::vector<uint64_t>& local) {
        for (size_t a = 0; a < w; ++a) counts[a] += local[a];
      });
  return PerAttributeHomophilyFromCounts(counts, g.num_edges());
}

}  // namespace agmdp::stats

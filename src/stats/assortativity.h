// Assortativity coefficients: degree assortativity (Newman's r) and
// attribute assortativity. Homophily ("birds of a feather", the phenomenon
// ΘF models) is exactly positive attribute assortativity, so these are the
// natural held-out statistics for judging whether AGM-DP preserved the
// correlations it never directly optimized.
//
// Summation contract (shared by the Graph and CsrGraph paths so they agree
// bitwise): floating-point edge terms accumulate into a per-source-node
// partial over the node's ascending-sorted forward neighbors, and the
// partials reduce sequentially in node order. The CsrGraph overloads
// parallelize the per-node partials over `threads` workers (<= 0 selects
// hardware concurrency); mixing-matrix and homophily tallies are integers,
// so any partition reduces to the same result.
#pragma once

#include <vector>

#include "src/graph/attributed_graph.h"
#include "src/graph/csr.h"
#include "src/graph/graph.h"

namespace agmdp::stats {

/// Pearson correlation of endpoint degrees over edges, in [-1, 1]. Returns
/// 0 for degenerate graphs (no edges / constant degrees).
double DegreeAssortativity(const graph::Graph& g);
double DegreeAssortativity(const graph::CsrGraph& g, int threads = 1);

/// Newman's discrete assortativity for the node attribute configuration:
/// (tr(e) - sum(e^2)) / (1 - sum(e^2)) where e is the normalized mixing
/// matrix over edges. 1 = perfect homophily, 0 = no correlation, negative =
/// heterophily. Returns 0 for edgeless graphs or single-category mixes.
double AttributeAssortativity(const graph::AttributedGraph& g);
double AttributeAssortativity(const graph::AttributedCsrGraph& g,
                              int threads = 1);

/// Per-attribute homophily: for each of the w attribute bits, the fraction
/// of edges whose endpoints agree on that bit. Length num_attributes();
/// every entry is 0 for edgeless graphs.
std::vector<double> PerAttributeHomophily(const graph::AttributedGraph& g);
std::vector<double> PerAttributeHomophily(const graph::AttributedCsrGraph& g,
                                          int threads = 1);

// Finalizers shared with the fused kernel (graph/fused_eval.h): the fused
// sweep produces the same node-order-reduced partial sums and integer
// tallies the kernels above accumulate, and these tails turn either
// source into the statistic through ONE formula body.

/// Pearson correlation over the 2m ordered endpoint pairs from the three
/// accumulated degree sums; 0 for edgeless or constant-degree graphs.
double DegreeAssortativityFromSums(double sum_xy, double sum_x,
                                   double sum_x2, uint64_t num_edges);

/// Newman's coefficient from the k x k row-major integer tallies over
/// ordered edge endpoints; 0 for edgeless graphs or single-category mixes.
double AttributeAssortativityFromMixingCounts(
    const std::vector<uint64_t>& counts, uint32_t k, uint64_t num_edges);

/// Same-value edge fraction per attribute bit from per-bit agreement
/// tallies; every entry is 0 for edgeless graphs.
std::vector<double> PerAttributeHomophilyFromCounts(
    const std::vector<uint64_t>& counts, uint64_t num_edges);

}  // namespace agmdp::stats

#include "src/stats/joint_degree.h"

#include <cmath>

#include "src/util/parallel.h"

namespace agmdp::stats {

namespace {

using JointDegreeMap = std::map<std::pair<uint32_t, uint32_t>, double>;

// Shared tail: Hellinger distance between two sorted-support mass maps.
double HellingerOfMaps(const JointDegreeMap& pa, const JointDegreeMap& pb) {
  double sum = 0.0;
  auto ia = pa.begin();
  auto ib = pb.begin();
  // Merge-walk the two sorted supports.
  while (ia != pa.end() || ib != pb.end()) {
    double x = 0.0, y = 0.0;
    if (ib == pb.end() || (ia != pa.end() && ia->first < ib->first)) {
      x = (ia++)->second;
    } else if (ia == pa.end() || ib->first < ia->first) {
      y = (ib++)->second;
    } else {
      x = (ia++)->second;
      y = (ib++)->second;
    }
    const double d = std::sqrt(x) - std::sqrt(y);
    sum += d * d;
  }
  return std::sqrt(sum) / std::sqrt(2.0);
}

}  // namespace

JointDegreeMap JointDegreeDistribution(const graph::Graph& g) {
  JointDegreeMap dist;
  if (g.num_edges() == 0) return dist;
  g.ForEachEdge([&](graph::NodeId u, graph::NodeId v) {
    uint32_t du = g.Degree(u), dv = g.Degree(v);
    if (du > dv) std::swap(du, dv);
    dist[{du, dv}] += 1.0;
  });
  const double m = static_cast<double>(g.num_edges());
  for (auto& [key, mass] : dist) mass /= m;
  return dist;
}

JointDegreeMap JointDegreeDistribution(const graph::CsrGraph& g,
                                       int threads) {
  JointDegreeMap dist;
  if (g.num_edges() == 0) return dist;
  const graph::NodeId n = g.num_nodes();
  using CountMap = std::map<std::pair<uint32_t, uint32_t>, uint64_t>;
  CountMap counts;
  util::ParallelTally(
      n, threads, [] { return CountMap(); },
      [&](CountMap& local, uint64_t begin, uint64_t end) {
        for (uint64_t ui = begin; ui < end; ++ui) {
          const auto u = static_cast<graph::NodeId>(ui);
          for (graph::NodeId v : g.Neighbors(u)) {
            if (v <= u) continue;
            uint32_t du = g.Degree(u), dv = g.Degree(v);
            if (du > dv) std::swap(du, dv);
            ++local[{du, dv}];
          }
        }
      },
      [&](const CountMap& local) {
        for (const auto& [key, count] : local) counts[key] += count;
      });
  const double m = static_cast<double>(g.num_edges());
  for (const auto& [key, count] : counts) {
    dist[key] = static_cast<double>(count) / m;
  }
  return dist;
}

double JointDegreeDistance(const graph::Graph& a, const graph::Graph& b) {
  return HellingerOfMaps(JointDegreeDistribution(a),
                         JointDegreeDistribution(b));
}

double JointDegreeDistance(const graph::CsrGraph& a, const graph::CsrGraph& b,
                           int threads) {
  return HellingerOfMaps(JointDegreeDistribution(a, threads),
                         JointDegreeDistribution(b, threads));
}

}  // namespace agmdp::stats

#include "src/stats/joint_degree.h"

#include <cmath>

namespace agmdp::stats {

std::map<std::pair<uint32_t, uint32_t>, double> JointDegreeDistribution(
    const graph::Graph& g) {
  std::map<std::pair<uint32_t, uint32_t>, double> dist;
  if (g.num_edges() == 0) return dist;
  g.ForEachEdge([&](graph::NodeId u, graph::NodeId v) {
    uint32_t du = g.Degree(u), dv = g.Degree(v);
    if (du > dv) std::swap(du, dv);
    dist[{du, dv}] += 1.0;
  });
  const double m = static_cast<double>(g.num_edges());
  for (auto& [key, mass] : dist) mass /= m;
  return dist;
}

double JointDegreeDistance(const graph::Graph& a, const graph::Graph& b) {
  const auto pa = JointDegreeDistribution(a);
  const auto pb = JointDegreeDistribution(b);
  double sum = 0.0;
  auto ia = pa.begin();
  auto ib = pb.begin();
  // Merge-walk the two sorted supports.
  while (ia != pa.end() || ib != pb.end()) {
    double x = 0.0, y = 0.0;
    if (ib == pb.end() || (ia != pa.end() && ia->first < ib->first)) {
      x = (ia++)->second;
    } else if (ia == pa.end() || ib->first < ia->first) {
      y = (ib++)->second;
    } else {
      x = (ia++)->second;
      y = (ib++)->second;
    }
    const double d = std::sqrt(x) - std::sqrt(y);
    sum += d * d;
  }
  return std::sqrt(sum) / std::sqrt(2.0);
}

}  // namespace agmdp::stats

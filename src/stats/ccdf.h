// Complementary cumulative distribution functions, the y-axes of Figures 2
// and 3 ("fraction of nodes with a greater degree / clustering coefficient
// than the x-value").
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace agmdp::stats {

/// (x, P[X > x]) at each distinct value of `values`, ascending in x.
std::vector<std::pair<double, double>> Ccdf(std::vector<double> values);

/// Ccdf of an integer sample given as a value -> count histogram (e.g.
/// graph::DegreeHistogram): bitwise-identical to Ccdf on the expanded
/// values, without materializing or sorting them (the Figure-2 series
/// builds straight off the fused degree histogram).
std::vector<std::pair<double, double>> CcdfFromHistogram(
    const std::vector<uint64_t>& hist);

/// Thins a CCDF series to at most `max_points` (keeps endpoints); used when
/// printing plot series as text tables.
std::vector<std::pair<double, double>> DownsampleCcdf(
    std::vector<std::pair<double, double>> series, size_t max_points);

}  // namespace agmdp::stats

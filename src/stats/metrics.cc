#include "src/stats/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/graph/degree.h"
#include "src/util/check.h"
#include "src/util/simd.h"

namespace agmdp::stats {

double RelativeError(double estimate, double truth, double floor) {
  return std::fabs(estimate - truth) / std::max(std::fabs(truth), floor);
}

double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b) {
  AGMDP_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

double MeanRelativeError(const std::vector<double>& a,
                         const std::vector<double>& b, double floor) {
  AGMDP_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += RelativeError(a[i], b[i], floor);
  return sum / static_cast<double>(a.size());
}

double HellingerDistance(std::vector<double> p, std::vector<double> q) {
  const size_t len = std::max(p.size(), q.size());
  p.resize(len, 0.0);
  q.resize(len, 0.0);
  // The per-element terms are element-exact on every dispatch arm
  // (util/simd.h), and the reduction below keeps the sequential
  // index-order chain — so the distance is bitwise-identical whichever
  // arm ran.
  std::vector<double> terms(len);
  util::SquaredSqrtDiff(p.data(), q.data(), len, terms.data());
  double sum = 0.0;
  for (size_t i = 0; i < len; ++i) sum += terms[i];
  return std::sqrt(sum) / std::sqrt(2.0);
}

double KsStatistic(std::vector<uint32_t> s1, std::vector<uint32_t> s2) {
  if (s1.empty() || s2.empty()) return s1.empty() == s2.empty() ? 0.0 : 1.0;
  std::sort(s1.begin(), s1.end());
  std::sort(s2.begin(), s2.end());
  const double n1 = static_cast<double>(s1.size());
  const double n2 = static_cast<double>(s2.size());
  size_t i = 0, j = 0;
  double ks = 0.0;
  while (i < s1.size() && j < s2.size()) {
    const uint32_t d = std::min(s1[i], s2[j]);
    while (i < s1.size() && s1[i] == d) ++i;
    while (j < s2.size() && s2[j] == d) ++j;
    ks = std::max(ks, std::fabs(static_cast<double>(i) / n1 -
                                static_cast<double>(j) / n2));
  }
  return ks;
}

double KsStatisticFromHistograms(const std::vector<uint64_t>& h1,
                                 const std::vector<uint64_t>& h2) {
  uint64_t n1 = 0, n2 = 0;
  for (uint64_t c : h1) n1 += c;
  for (uint64_t c : h2) n2 += c;
  if (n1 == 0 || n2 == 0) return (n1 == 0) == (n2 == 0) ? 0.0 : 1.0;
  // The merge walk of KsStatistic with each nonzero bin playing the run of
  // equal sample values it expands to: the cumulative counts after each
  // distinct value are the same integers, so the |F1 - F2| candidates —
  // and hence the sup — are bitwise-identical.
  const auto next_nonzero = [](const std::vector<uint64_t>& h, size_t from) {
    while (from < h.size() && h[from] == 0) ++from;
    return from;
  };
  size_t i = next_nonzero(h1, 0), j = next_nonzero(h2, 0);
  uint64_t ci = 0, cj = 0;
  double ks = 0.0;
  while (i < h1.size() && j < h2.size()) {
    const size_t d = std::min(i, j);
    if (i == d) {
      ci += h1[i];
      i = next_nonzero(h1, i + 1);
    }
    if (j == d) {
      cj += h2[j];
      j = next_nonzero(h2, j + 1);
    }
    ks = std::max(ks, std::fabs(static_cast<double>(ci) /
                                    static_cast<double>(n1) -
                                static_cast<double>(cj) /
                                    static_cast<double>(n2)));
  }
  return ks;
}

double KsDistance(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return a.empty() == b.empty() ? 0.0 : 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return KsDistanceSorted(a, b);
}

double KsDistanceSorted(const std::vector<double>& a,
                        const std::vector<double>& b) {
  if (a.empty() || b.empty()) return a.empty() == b.empty() ? 0.0 : 1.0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  size_t i = 0, j = 0;
  double ks = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
    ks = std::max(ks, std::fabs(static_cast<double>(i) / na -
                                static_cast<double>(j) / nb));
  }
  return ks;
}

double KlDivergence(std::vector<double> p, std::vector<double> q,
                    double floor) {
  const size_t len = std::max(p.size(), q.size());
  p.resize(len, 0.0);
  q.resize(len, 0.0);
  double kl = 0.0;
  for (size_t i = 0; i < len; ++i) {
    if (p[i] <= 0.0) continue;
    kl += p[i] * std::log(p[i] / std::max(q[i], floor));
  }
  return kl;
}

namespace {

// Shared body: the Graph and CsrGraph entry points must not drift apart
// (DESIGN.md snapshot contract).
template <typename AnyGraph>
std::vector<double> DegreeDistributionImpl(const AnyGraph& g) {
  return DegreeDistributionFromHistogram(graph::DegreeHistogram(g),
                                         g.num_nodes());
}

}  // namespace

std::vector<double> DegreeDistributionFromHistogram(
    const std::vector<uint64_t>& hist, uint64_t num_nodes) {
  std::vector<double> dist(hist.size(), 0.0);
  const double n = static_cast<double>(num_nodes);
  if (n == 0.0) return dist;
  for (size_t d = 0; d < hist.size(); ++d) {
    dist[d] = static_cast<double>(hist[d]) / n;
  }
  return dist;
}

std::vector<double> DegreeDistribution(const graph::Graph& g) {
  return DegreeDistributionImpl(g);
}

std::vector<double> DegreeDistribution(const graph::CsrGraph& g) {
  return DegreeDistributionImpl(g);
}

double DegreeHellinger(const graph::Graph& a, const graph::Graph& b) {
  return HellingerDistance(DegreeDistribution(a), DegreeDistribution(b));
}

}  // namespace agmdp::stats

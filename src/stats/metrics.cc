#include "src/stats/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/graph/degree.h"
#include "src/util/check.h"

namespace agmdp::stats {

double RelativeError(double estimate, double truth, double floor) {
  return std::fabs(estimate - truth) / std::max(std::fabs(truth), floor);
}

double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b) {
  AGMDP_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

double MeanRelativeError(const std::vector<double>& a,
                         const std::vector<double>& b, double floor) {
  AGMDP_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += RelativeError(a[i], b[i], floor);
  return sum / static_cast<double>(a.size());
}

double HellingerDistance(std::vector<double> p, std::vector<double> q) {
  const size_t len = std::max(p.size(), q.size());
  p.resize(len, 0.0);
  q.resize(len, 0.0);
  double sum = 0.0;
  for (size_t i = 0; i < len; ++i) {
    const double d = std::sqrt(std::max(0.0, p[i])) -
                     std::sqrt(std::max(0.0, q[i]));
    sum += d * d;
  }
  return std::sqrt(sum) / std::sqrt(2.0);
}

double KsStatistic(std::vector<uint32_t> s1, std::vector<uint32_t> s2) {
  if (s1.empty() || s2.empty()) return s1.empty() == s2.empty() ? 0.0 : 1.0;
  std::sort(s1.begin(), s1.end());
  std::sort(s2.begin(), s2.end());
  const double n1 = static_cast<double>(s1.size());
  const double n2 = static_cast<double>(s2.size());
  size_t i = 0, j = 0;
  double ks = 0.0;
  while (i < s1.size() && j < s2.size()) {
    const uint32_t d = std::min(s1[i], s2[j]);
    while (i < s1.size() && s1[i] == d) ++i;
    while (j < s2.size() && s2[j] == d) ++j;
    ks = std::max(ks, std::fabs(static_cast<double>(i) / n1 -
                                static_cast<double>(j) / n2));
  }
  return ks;
}

double KsDistance(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return a.empty() == b.empty() ? 0.0 : 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  size_t i = 0, j = 0;
  double ks = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
    ks = std::max(ks, std::fabs(static_cast<double>(i) / na -
                                static_cast<double>(j) / nb));
  }
  return ks;
}

double KlDivergence(std::vector<double> p, std::vector<double> q,
                    double floor) {
  const size_t len = std::max(p.size(), q.size());
  p.resize(len, 0.0);
  q.resize(len, 0.0);
  double kl = 0.0;
  for (size_t i = 0; i < len; ++i) {
    if (p[i] <= 0.0) continue;
    kl += p[i] * std::log(p[i] / std::max(q[i], floor));
  }
  return kl;
}

namespace {

// Shared body: the Graph and CsrGraph entry points must not drift apart
// (DESIGN.md snapshot contract).
template <typename AnyGraph>
std::vector<double> DegreeDistributionImpl(const AnyGraph& g) {
  std::vector<uint64_t> hist = graph::DegreeHistogram(g);
  std::vector<double> dist(hist.size(), 0.0);
  const double n = static_cast<double>(g.num_nodes());
  if (n == 0.0) return dist;
  for (size_t d = 0; d < hist.size(); ++d) {
    dist[d] = static_cast<double>(hist[d]) / n;
  }
  return dist;
}

}  // namespace

std::vector<double> DegreeDistribution(const graph::Graph& g) {
  return DegreeDistributionImpl(g);
}

std::vector<double> DegreeDistribution(const graph::CsrGraph& g) {
  return DegreeDistributionImpl(g);
}

double DegreeHellinger(const graph::Graph& a, const graph::Graph& b) {
  return HellingerDistance(DegreeDistribution(a), DegreeDistribution(b));
}

}  // namespace agmdp::stats

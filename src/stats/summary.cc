#include "src/stats/summary.h"

#include <cstdio>

#include "src/agm/theta_f.h"
#include "src/graph/clustering.h"
#include "src/graph/degree.h"
#include "src/graph/fused_eval.h"
#include "src/graph/triangle_count.h"
#include "src/stats/metrics.h"

namespace agmdp::stats {

GraphSummary Summarize(const graph::Graph& g) {
  GraphSummary s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.max_degree = g.MaxDegree();
  s.avg_degree = graph::AverageDegree(g);
  s.triangles = graph::CountTriangles(g);
  s.avg_local_clustering = graph::AverageLocalClustering(g);
  s.global_clustering = graph::GlobalClusteringCoefficient(g);
  return s;
}

GraphSummary Summarize(const graph::CsrGraph& g, int threads) {
  GraphSummary s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.max_degree = g.MaxDegree();
  s.avg_degree = graph::AverageDegree(g);
  // The fused pass serves all three statistics from one run of the
  // SIMD-dispatched triangle sweep (same values as ComputeClusteringStats,
  // bit for bit).
  graph::FusedOptions opts;
  opts.threads = threads;
  const graph::FusedStats fused = graph::FusedEvaluate(g, opts);
  s.triangles = fused.clustering.triangles;
  s.avg_local_clustering = fused.clustering.avg_local_clustering;
  s.global_clustering = fused.clustering.global_clustering;
  return s;
}

std::string FormatSummary(const std::string& name, const GraphSummary& s) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%-14s n=%-8llu m=%-9llu dmax=%-6u davg=%-6.2f "
                "tri=%-9llu C̄=%-6.4f C=%-6.4f",
                name.c_str(),
                static_cast<unsigned long long>(s.num_nodes),
                static_cast<unsigned long long>(s.num_edges), s.max_degree,
                s.avg_degree, static_cast<unsigned long long>(s.triangles),
                s.avg_local_clustering, s.global_clustering);
  return buffer;
}

UtilityErrors& UtilityErrors::operator+=(const UtilityErrors& o) {
  theta_f_mae += o.theta_f_mae;
  theta_f_hellinger += o.theta_f_hellinger;
  degree_ks += o.degree_ks;
  degree_hellinger += o.degree_hellinger;
  triangles_re += o.triangles_re;
  avg_clustering_re += o.avg_clustering_re;
  global_clustering_re += o.global_clustering_re;
  edges_re += o.edges_re;
  return *this;
}

UtilityErrors UtilityErrors::operator/(double k) const {
  UtilityErrors out = *this;
  out.theta_f_mae /= k;
  out.theta_f_hellinger /= k;
  out.degree_ks /= k;
  out.degree_hellinger /= k;
  out.triangles_re /= k;
  out.avg_clustering_re /= k;
  out.global_clustering_re /= k;
  out.edges_re /= k;
  return out;
}

UtilityErrors CompareGraphs(const graph::AttributedGraph& original,
                            const graph::AttributedGraph& synthetic) {
  UtilityErrors e;
  const graph::Graph& g0 = original.structure();
  const graph::Graph& g1 = synthetic.structure();

  const std::vector<double> theta0 = agm::ComputeThetaF(original);
  const std::vector<double> theta1 = agm::ComputeThetaF(synthetic);
  e.theta_f_mae = MeanAbsoluteError(theta1, theta0);
  e.theta_f_hellinger = HellingerDistance(theta1, theta0);

  e.degree_ks = KsStatistic(graph::SortedDegreeSequence(g1),
                            graph::SortedDegreeSequence(g0));
  e.degree_hellinger = DegreeHellinger(g1, g0);

  e.triangles_re =
      RelativeError(static_cast<double>(graph::CountTriangles(g1)),
                    static_cast<double>(graph::CountTriangles(g0)));
  e.avg_clustering_re = RelativeError(graph::AverageLocalClustering(g1),
                                      graph::AverageLocalClustering(g0));
  e.global_clustering_re = RelativeError(graph::GlobalClusteringCoefficient(g1),
                                         graph::GlobalClusteringCoefficient(g0));
  e.edges_re = RelativeError(static_cast<double>(g1.num_edges()),
                             static_cast<double>(g0.num_edges()));
  return e;
}

}  // namespace agmdp::stats

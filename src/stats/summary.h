// One-stop structural summary of a graph (the columns of Table 6) and the
// per-trial error record used by the Tables 2-5 harness.
#pragma once

#include <cstdint>
#include <string>

#include "src/graph/attributed_graph.h"
#include "src/graph/csr.h"
#include "src/graph/graph.h"

namespace agmdp::stats {

struct GraphSummary {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0.0;
  uint64_t triangles = 0;
  double avg_local_clustering = 0.0;
  double global_clustering = 0.0;
};

GraphSummary Summarize(const graph::Graph& g);
/// Snapshot path: identical values, with the triangle work parallelized
/// over `threads` workers (<= 0 selects hardware concurrency).
GraphSummary Summarize(const graph::CsrGraph& g, int threads = 1);

/// Fixed-width single-line rendering, e.g. for Table 6 style output.
std::string FormatSummary(const std::string& name, const GraphSummary& s);

/// The error columns of Tables 2-5, comparing a synthetic graph against the
/// original input (Section 5.1 statistics).
struct UtilityErrors {
  // ΘF column. The paper's text says MRE but the reported magnitudes (and
  // Figures 1/5) match the MAE of the correlation probability vectors, so
  // MAE is what we compute; see EXPERIMENTS.md.
  double theta_f_mae = 0.0;
  double theta_f_hellinger = 0.0;  // HΘF
  double degree_ks = 0.0;       // KS_S
  double degree_hellinger = 0.0;   // H_S
  double triangles_re = 0.0;    // n∆ (relative error)
  double avg_clustering_re = 0.0;  // C̄
  double global_clustering_re = 0.0;  // C
  double edges_re = 0.0;        // m

  UtilityErrors& operator+=(const UtilityErrors& o);
  UtilityErrors operator/(double k) const;
};

/// Computes all Tables 2-5 statistics for a synthetic graph vs the input.
UtilityErrors CompareGraphs(const graph::AttributedGraph& original,
                            const graph::AttributedGraph& synthetic);

}  // namespace agmdp::stats

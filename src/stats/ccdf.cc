#include "src/stats/ccdf.h"

#include <algorithm>

namespace agmdp::stats {

std::vector<std::pair<double, double>> Ccdf(std::vector<double> values) {
  std::vector<std::pair<double, double>> series;
  if (values.empty()) return series;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  size_t i = 0;
  while (i < values.size()) {
    const double x = values[i];
    while (i < values.size() && values[i] == x) ++i;
    // i values are <= x, so n - i are strictly greater.
    series.emplace_back(x, static_cast<double>(values.size() - i) / n);
  }
  return series;
}

std::vector<std::pair<double, double>> CcdfFromHistogram(
    const std::vector<uint64_t>& hist) {
  uint64_t total = 0;
  for (uint64_t c : hist) total += c;
  std::vector<std::pair<double, double>> series;
  if (total == 0) return series;
  const double n = static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t d = 0; d < hist.size(); ++d) {
    if (hist[d] == 0) continue;
    cum += hist[d];
    // cum values are <= d, so total - cum are strictly greater — the same
    // integers Ccdf reaches after consuming the run of d's.
    series.emplace_back(static_cast<double>(d),
                        static_cast<double>(total - cum) / n);
  }
  return series;
}

std::vector<std::pair<double, double>> DownsampleCcdf(
    std::vector<std::pair<double, double>> series, size_t max_points) {
  if (max_points < 2 || series.size() <= max_points) return series;
  std::vector<std::pair<double, double>> out;
  out.reserve(max_points);
  const double step = static_cast<double>(series.size() - 1) /
                      static_cast<double>(max_points - 1);
  size_t last_index = series.size();  // sentinel
  for (size_t i = 0; i < max_points; ++i) {
    size_t index = static_cast<size_t>(i * step + 0.5);
    if (index >= series.size()) index = series.size() - 1;
    if (index != last_index) {
      out.push_back(series[index]);
      last_index = index;
    }
  }
  return out;
}

}  // namespace agmdp::stats

#include "src/stats/ccdf.h"

#include <algorithm>

namespace agmdp::stats {

std::vector<std::pair<double, double>> Ccdf(std::vector<double> values) {
  std::vector<std::pair<double, double>> series;
  if (values.empty()) return series;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  size_t i = 0;
  while (i < values.size()) {
    const double x = values[i];
    while (i < values.size() && values[i] == x) ++i;
    // i values are <= x, so n - i are strictly greater.
    series.emplace_back(x, static_cast<double>(values.size() - i) / n);
  }
  return series;
}

std::vector<std::pair<double, double>> DownsampleCcdf(
    std::vector<std::pair<double, double>> series, size_t max_points) {
  if (max_points < 2 || series.size() <= max_points) return series;
  std::vector<std::pair<double, double>> out;
  out.reserve(max_points);
  const double step = static_cast<double>(series.size() - 1) /
                      static_cast<double>(max_points - 1);
  size_t last_index = series.size();  // sentinel
  for (size_t i = 0; i < max_points; ++i) {
    size_t index = static_cast<size_t>(i * step + 0.5);
    if (index >= series.size()) index = series.size() - 1;
    if (index != last_index) {
      out.push_back(series[index]);
      last_index = index;
    }
  }
  return out;
}

}  // namespace agmdp::stats

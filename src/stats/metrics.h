// Error metrics from Section 5.1: MRE/MAE, Hellinger distance, and the
// Kolmogorov-Smirnov statistic between degree distributions.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace agmdp::stats {

/// |estimate - truth| / max(|truth|, floor); floor guards division by zero.
double RelativeError(double estimate, double truth, double floor = 1e-12);

/// Mean of component-wise |a_i - b_i|. Requires equal sizes.
double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Mean of component-wise relative errors |a_i - b_i| / max(|b_i|, floor).
double MeanRelativeError(const std::vector<double>& a,
                         const std::vector<double>& b, double floor = 1e-12);

/// Hellinger distance between two discrete distributions (padded with zeros
/// to a common length): (1/sqrt(2)) * || sqrt(p) - sqrt(q) ||_2.
double HellingerDistance(std::vector<double> p, std::vector<double> q);

/// KS statistic between the degree distributions of two sorted degree
/// sequences: max_d |F_1(d) - F_2(d)| where F is the empirical CDF of the
/// degree values.
double KsStatistic(std::vector<uint32_t> s1, std::vector<uint32_t> s2);

/// Normalized degree histogram of a graph (mass at each degree value).
std::vector<double> DegreeDistribution(const graph::Graph& g);

/// Hellinger distance between the degree distributions of two graphs (the
/// paper's H_S).
double DegreeHellinger(const graph::Graph& a, const graph::Graph& b);

}  // namespace agmdp::stats

// Error metrics from Section 5.1: MRE/MAE, Hellinger distance, and the
// Kolmogorov-Smirnov statistic between degree distributions.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/graph.h"

namespace agmdp::stats {

/// |estimate - truth| / max(|truth|, floor); floor guards division by zero.
double RelativeError(double estimate, double truth, double floor = 1e-12);

/// Mean of component-wise |a_i - b_i|. Requires equal sizes.
double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Mean of component-wise relative errors |a_i - b_i| / max(|b_i|, floor).
double MeanRelativeError(const std::vector<double>& a,
                         const std::vector<double>& b, double floor = 1e-12);

/// Hellinger distance between two discrete distributions (padded with zeros
/// to a common length): (1/sqrt(2)) * || sqrt(p) - sqrt(q) ||_2.
double HellingerDistance(std::vector<double> p, std::vector<double> q);

/// KS statistic between the degree distributions of two sorted degree
/// sequences: max_d |F_1(d) - F_2(d)| where F is the empirical CDF of the
/// degree values.
double KsStatistic(std::vector<uint32_t> s1, std::vector<uint32_t> s2);

/// KsStatistic on two integer samples given as value -> count histograms
/// (e.g. graph::DegreeHistogram): bitwise-identical to KsStatistic on the
/// expanded sorted sequences, without materializing or sorting them. The
/// fused evaluation path feeds degree histograms straight into this.
double KsStatisticFromHistograms(const std::vector<uint64_t>& h1,
                                 const std::vector<uint64_t>& h2);

/// KS statistic over real-valued samples: sup_x |F_1(x) - F_2(x)|. Because
/// sup |F_1 - F_2| = sup |(1-F_1) - (1-F_2)|, this is also the sup-norm
/// distance between the two empirical CCDF step functions (the curves of
/// Figures 2/3). Empty-vs-nonempty is distance 1, empty-vs-empty is 0.
double KsDistance(std::vector<double> a, std::vector<double> b);

/// KsDistance over samples the caller already sorted ascending (no copies,
/// no re-sorts — EvaluateRelease keeps the reference side presorted in the
/// profile and sorts the released side once).
double KsDistanceSorted(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Kullback-Leibler divergence KL(p || q) = sum_{p_i > 0} p_i ln(p_i / q_i)
/// over distributions padded with zeros to a common length; q_i is floored
/// at `floor` so that mass of p outside q's support contributes a large but
/// finite penalty. Nonnegative whenever p and q are distributions.
double KlDivergence(std::vector<double> p, std::vector<double> q,
                    double floor = 1e-12);

/// Normalized degree histogram of a graph (mass at each degree value).
std::vector<double> DegreeDistribution(const graph::Graph& g);
std::vector<double> DegreeDistribution(const graph::CsrGraph& g);

/// The same distribution from an already-computed degree histogram — the
/// shared tail of the graph overloads and the fused evaluation path.
std::vector<double> DegreeDistributionFromHistogram(
    const std::vector<uint64_t>& hist, uint64_t num_nodes);

/// Hellinger distance between the degree distributions of two graphs (the
/// paper's H_S).
double DegreeHellinger(const graph::Graph& a, const graph::Graph& b);

}  // namespace agmdp::stats

// dK-2 series: the joint degree distribution, i.e. the distribution over
// the unordered degree pairs observed on edges. This is the statistic the
// Pygmalion / dK-graph line of related work (Sala et al.) models directly;
// here it serves as another held-out fidelity metric for synthetic graphs
// (AGM-DP never optimizes it).
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "src/graph/graph.h"

namespace agmdp::stats {

/// Probability mass per unordered degree pair (d_min, d_max) over edges.
/// Empty for edgeless graphs.
std::map<std::pair<uint32_t, uint32_t>, double> JointDegreeDistribution(
    const graph::Graph& g);

/// Hellinger distance between the dK-2 series of two graphs (union of
/// supports; in [0, 1]).
double JointDegreeDistance(const graph::Graph& a, const graph::Graph& b);

}  // namespace agmdp::stats

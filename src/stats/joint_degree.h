// dK-2 series: the joint degree distribution, i.e. the distribution over
// the unordered degree pairs observed on edges. This is the statistic the
// Pygmalion / dK-graph line of related work (Sala et al.) models directly;
// here it serves as another held-out fidelity metric for synthetic graphs
// (AGM-DP never optimizes it).
// The CsrGraph overloads parallelize the per-edge tally over `threads`
// workers (<= 0 selects hardware concurrency); tallies are integers keyed
// by degree pair, so merged maps are identical at any thread count and the
// distributions agree exactly with the Graph path.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "src/graph/csr.h"
#include "src/graph/graph.h"

namespace agmdp::stats {

/// Probability mass per unordered degree pair (d_min, d_max) over edges.
/// Empty for edgeless graphs.
std::map<std::pair<uint32_t, uint32_t>, double> JointDegreeDistribution(
    const graph::Graph& g);
std::map<std::pair<uint32_t, uint32_t>, double> JointDegreeDistribution(
    const graph::CsrGraph& g, int threads = 1);

/// Hellinger distance between the dK-2 series of two graphs (union of
/// supports; in [0, 1]).
double JointDegreeDistance(const graph::Graph& a, const graph::Graph& b);
double JointDegreeDistance(const graph::CsrGraph& a, const graph::CsrGraph& b,
                           int threads = 1);

}  // namespace agmdp::stats

// A guided tour of the differential-privacy building blocks the AGM-DP
// pipeline is assembled from, each demonstrated on a small graph:
//   1. Laplace mechanism + clamp/normalize      (Theta_X, Algorithm 5)
//   2. Edge truncation                          (Theta_F, Algorithm 4)
//   3. Smooth sensitivity                       (Appendix B.1)
//   4. Constrained inference / PAVA             (degree sequence, Alg. 6)
//   5. Ladder mechanism                         (triangle count, Alg. 6)
//
//   ./dp_mechanisms_tour [--epsilon=0.5] [--seed=9]
#include <cmath>
#include <cstdio>

#include "src/agm/theta_f.h"
#include "src/agm/theta_x.h"
#include "src/datasets/datasets.h"
#include "src/dp/constrained_inference.h"
#include "src/dp/edge_truncation.h"
#include "src/dp/ladder_mechanism.h"
#include "src/dp/smooth_sensitivity.h"
#include "src/graph/degree.h"
#include "src/graph/triangle_count.h"
#include "src/stats/metrics.h"
#include "src/util/flags.h"
#include "src/util/rng.h"

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const double eps = flags.GetDouble("epsilon", 0.5);
  util::Rng rng(flags.GetInt("seed", 9));

  auto input = datasets::GenerateDataset(datasets::DatasetId::kPetster,
                                         /*scale=*/0.5, /*seed=*/5);
  if (!input.ok()) return 1;
  const graph::AttributedGraph& g = input.value();
  std::printf("demo graph: n=%u m=%llu dmax=%u\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()),
              g.structure().MaxDegree());

  // 1. Laplace mechanism on the attribute histogram (GS = 2).
  std::printf("[1] Laplace mechanism: Theta_X at eps=%.2f\n", eps);
  const auto exact_x = agm::ComputeThetaX(g);
  const auto noisy_x = agm::LearnAttributesDp(g, eps, rng);
  for (size_t y = 0; y < exact_x.size(); ++y) {
    std::printf("    config %zu: exact %.4f  private %.4f\n", y, exact_x[y],
                noisy_x[y]);
  }

  // 2. Edge truncation: k-bounded projection shrinks sensitivity 2n-2 -> 2k.
  const uint32_t k = dp::HeuristicTruncationK(g.num_nodes());
  const graph::AttributedGraph truncated = dp::TruncateEdges(g, k);
  std::printf("\n[2] edge truncation: k = n^(1/3) = %u\n", k);
  std::printf("    edges kept %llu / %llu, dmax %u -> %u\n",
              static_cast<unsigned long long>(truncated.num_edges()),
              static_cast<unsigned long long>(g.num_edges()),
              g.structure().MaxDegree(), truncated.structure().MaxDegree());
  std::printf("    naive GS = 2n-2 = %u, truncated GS = 2k = %u\n",
              2 * g.num_nodes() - 2, 2 * k);
  const auto exact_f = agm::ComputeThetaF(g);
  const auto trunc_f = agm::LearnCorrelationsDp(g, eps, k, rng);
  std::printf("    Theta_F MAE (truncation): %.5f\n",
              stats::MeanAbsoluteError(trunc_f, exact_f));

  // 3. Smooth sensitivity: data-dependent noise, (eps, delta)-DP.
  const double delta = 1e-6;
  const double beta = dp::SmoothSensitivityBeta(eps, delta);
  const double smooth =
      dp::SmoothSensitivityQF(g.structure().MaxDegree(), g.num_nodes(), beta);
  std::printf("\n[3] smooth sensitivity: beta=%.4f S*=%.1f (vs GS %u)\n",
              beta, smooth, 2 * g.num_nodes() - 2);
  const auto smooth_f = agm::LearnCorrelationsSmooth(g, eps, delta, rng);
  std::printf("    Theta_F MAE (smooth):     %.5f\n",
              stats::MeanAbsoluteError(smooth_f, exact_f));

  // 4. Constrained inference on the degree sequence.
  const auto degrees = graph::DegreeSequence(g.structure());
  const auto private_degrees = dp::DpDegreeSequence(degrees, eps, rng);
  auto sorted = graph::SortedDegreeSequence(g.structure());
  double l1 = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    l1 += std::fabs(static_cast<double>(private_degrees[i]) -
                    static_cast<double>(sorted[i]));
  }
  std::printf("\n[4] constrained inference: mean |noisy - true| per degree ="
              " %.3f (raw Laplace would be %.3f)\n",
              l1 / sorted.size(), 2.0 / eps);

  // 5. Ladder mechanism for the triangle count.
  const uint64_t tri = graph::CountTriangles(g.structure());
  dp::LadderDiagnostics diag;
  auto private_tri =
      dp::DpTriangleCount(g.structure(), eps, rng, dp::LadderOptions{}, &diag);
  std::printf("\n[5] ladder mechanism: true n_tri=%llu private=%lld "
              "(ladder base %u, %s)\n",
              static_cast<unsigned long long>(tri),
              static_cast<long long>(private_tri.value()), diag.ladder_base,
              diag.used_exact_base ? "exact a_max" : "degree bound");
  std::printf("    naive Laplace noise at GS=n-2 would have scale %.0f\n",
              (static_cast<double>(g.num_nodes()) - 2.0) / eps);
  return 0;
}

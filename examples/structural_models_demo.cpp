// Structural models side by side (the non-private comparison behind
// Figures 2 and 3): fit FCL, TCL and TriCycLe to one dataset and report how
// well each reproduces degrees, triangles and clustering.
//
//   ./structural_models_demo [--dataset=lastfm] [--scale=1.0]
#include <cstdio>

#include "src/datasets/datasets.h"
#include "src/graph/degree.h"
#include "src/graph/triangle_count.h"
#include "src/models/bter.h"
#include "src/models/chung_lu.h"
#include "src/models/tcl.h"
#include "src/models/tricycle.h"
#include "src/stats/metrics.h"
#include "src/stats/summary.h"
#include "src/util/flags.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

void Report(const char* name, const graph::Graph& original,
            const graph::Graph& synthetic) {
  std::printf("%s\n", stats::FormatSummary(name,
                                           stats::Summarize(synthetic))
                          .c_str());
  std::printf("    degree KS=%.4f  degree Hellinger=%.4f\n",
              stats::KsStatistic(graph::SortedDegreeSequence(synthetic),
                                 graph::SortedDegreeSequence(original)),
              stats::DegreeHellinger(synthetic, original));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const auto dataset =
      datasets::DatasetByName(flags.GetString("dataset", "lastfm"));
  const double scale = flags.GetDouble("scale", 1.0);
  util::Rng rng(flags.GetInt("seed", 3));

  auto input = datasets::GenerateDataset(dataset, scale, 7);
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }
  const graph::Graph& g = input.value().structure();
  std::printf("%s\n",
              stats::FormatSummary("original", stats::Summarize(g)).c_str());
  std::printf("\n");

  const std::vector<uint32_t> degrees = graph::DegreeSequence(g);
  const uint64_t triangles = graph::CountTriangles(g);

  // FCL: degrees only, no clustering mechanism.
  auto fcl = models::FastChungLu(degrees, rng);
  if (!fcl.ok()) return 1;
  Report("FCL", g, fcl.value());

  // TCL: degrees + EM-fitted transitive closure probability.
  const double rho = models::FitTclRho(g, rng);
  std::printf("\nTCL fitted rho = %.3f\n", rho);
  auto tcl = models::GenerateTcl(degrees, rho, rng);
  if (!tcl.ok()) return 1;
  Report("TCL", g, tcl.value());

  // TriCycLe: degrees + triangle-count target.
  auto tricycle = models::GenerateTriCycLe(degrees, triangles, rng);
  if (!tricycle.ok()) return 1;
  std::printf("\nTriCycLe: target=%llu achieved=%llu (%llu proposals)\n",
              static_cast<unsigned long long>(triangles),
              static_cast<unsigned long long>(
                  tricycle.value().achieved_triangles),
              static_cast<unsigned long long>(tricycle.value().proposals));
  Report("TriCycLe", g, tricycle.value().graph);

  // BTER: degrees + degree-wise clustering profile (non-private baseline;
  // the paper rejects it for DP because of the profile's sensitivity).
  auto bter = models::GenerateBter(models::FitBter(g), rng);
  if (!bter.ok()) return 1;
  std::printf("\n");
  Report("BTER", g, bter.value());
  return 0;
}

// Quickstart: synthesize a differentially private version of an attributed
// social graph in ~20 lines of client code.
//
//   ./quickstart [--epsilon=1.0] [--seed=42]
#include <cmath>
#include <cstdio>

#include "src/datasets/datasets.h"
#include "src/pipeline/release_engine.h"
#include "src/pipeline/release_pipeline.h"
#include "src/stats/summary.h"
#include "src/util/flags.h"
#include "src/util/rng.h"

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  util::Rng rng(flags.GetInt("seed", 42));

  // 1. A sensitive input graph. Here: the Last.fm stand-in — in a real
  //    deployment this is your private attributed graph, e.g. opened with
  //    graph::GraphSource::Open(path) (text prefix or .agmbin container)
  //    and materialized via .Materialize().
  auto input = datasets::GenerateDataset(datasets::DatasetId::kLastFm,
                                         /*scale=*/0.5, /*seed=*/7);
  if (!input.ok()) {
    std::fprintf(stderr, "dataset: %s\n", input.status().ToString().c_str());
    return 1;
  }

  // 2. One call: the release pipeline learns all AGM parameters under
  //    epsilon-DP and samples a synthetic graph (TriCycLe by default).
  pipeline::PipelineConfig config;
  config.epsilon = flags.GetDouble("epsilon", std::log(2.0));
  auto result = pipeline::RunPrivateRelease(input.value(), config, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "AGM-DP: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 3. The synthetic graph is safe to publish; audit the ledger, compare
  //    utility.
  std::printf("privacy budget spends:\n");
  for (const auto& [label, eps] : result.value().ledger) {
    std::printf("  %-16s eps = %.4f\n", label.c_str(), eps);
  }
  std::printf("\n%s\n",
              stats::FormatSummary("input",
                                   stats::Summarize(input.value().structure()))
                  .c_str());
  std::printf("%s\n",
              stats::FormatSummary(
                  "synthetic",
                  stats::Summarize(result.value().graph.structure()))
                  .c_str());

  stats::UtilityErrors errors =
      stats::CompareGraphs(input.value(), result.value().graph);
  std::printf("\nutility (lower is better):\n");
  std::printf("  Theta_F MAE        %.4f\n", errors.theta_f_mae);
  std::printf("  Theta_F Hellinger  %.4f\n", errors.theta_f_hellinger);
  std::printf("  degree KS          %.4f\n", errors.degree_ks);
  std::printf("  degree Hellinger   %.4f\n", errors.degree_hellinger);
  std::printf("  triangle rel.err   %.4f\n", errors.triangles_re);
  std::printf("  edge-count rel.err %.4f\n", errors.edges_re);

  // 4. Need many synthetic graphs? The fitted parameters are the release:
  //    serve them from a ReleaseEngine at zero extra privacy cost (see
  //    examples/private_release_workflow.cpp for the full fit-once /
  //    sample-many workflow with stored artifacts).
  auto engine = pipeline::ReleaseEngine::Create(
      pipeline::MakeReleaseArtifact(result.value().params, config));
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  auto more = engine.value()->SampleMany(2, pipeline::SampleRequest{});
  if (!more.ok()) {
    std::fprintf(stderr, "serve: %s\n", more.status().ToString().c_str());
    return 1;
  }
  std::printf("\nserved %zu extra synthetic graphs from the same fit "
              "(no additional epsilon)\n",
              more.value().size());
  return 0;
}

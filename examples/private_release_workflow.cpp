// Private release workflow: the end-to-end scenario from the paper's
// introduction. A data owner holds a sensitive attributed social graph and
// wants to hand analysts synthetic graphs they can explore freely.
//
// Steps: load (or build) the private graph -> pick a privacy budget ->
// run pipeline::RunPrivateRelease for several independent releases ->
// audit each release's budget ledger -> evaluate against the input ->
// persist as edge/attribute files.
//
//   ./private_release_workflow [--epsilon=0.69] [--releases=3]
//                              [--dataset=petster] [--model=tricycle]
//                              [--threads=1] [--out=/tmp/release]
#include <cmath>
#include <cstdio>
#include <string>

#include "src/datasets/datasets.h"
#include "src/graph/graph_io.h"
#include "src/pipeline/release_pipeline.h"
#include "src/stats/summary.h"
#include "src/util/flags.h"
#include "src/util/rng.h"

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const int releases = static_cast<int>(flags.GetInt("releases", 3));
  const std::string out = flags.GetString("out", "/tmp/agmdp_release");
  const auto dataset =
      datasets::DatasetByName(flags.GetString("dataset", "petster"));
  util::Rng rng(flags.GetInt("seed", 1));

  pipeline::PipelineConfig config;
  config.epsilon = flags.GetDouble("epsilon", std::log(2.0));
  config.model = flags.GetString("model", "tricycle");
  config.sample.acceptance_iterations = 3;
  config.sample.threads = static_cast<int>(flags.GetInt("threads", 1));

  auto input = datasets::GenerateDataset(dataset, 1.0, 11);
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              stats::FormatSummary("input",
                                   stats::Summarize(input.value().structure()))
                  .c_str());

  // IMPORTANT privacy note: each release consumes its own epsilon; by
  // sequential composition the owner's total exposure is releases * epsilon.
  std::printf("total privacy cost: %d x %.3f = %.3f\n\n", releases,
              config.epsilon, releases * config.epsilon);

  for (int i = 0; i < releases; ++i) {
    auto result = pipeline::RunPrivateRelease(input.value(), config, rng);
    if (!result.ok()) {
      std::fprintf(stderr, "release %d failed: %s\n", i,
                   result.status().ToString().c_str());
      return 1;
    }
    const pipeline::ReleaseResult& release = result.value();
    const std::string prefix = out + "_" + std::to_string(i);
    if (auto st = graph::WriteAttributedGraph(release.graph, prefix);
        !st.ok()) {
      std::fprintf(stderr, "write: %s\n", st.ToString().c_str());
      return 1;
    }
    stats::UtilityErrors e =
        stats::CompareGraphs(input.value(), release.graph);
    std::printf("release %d -> %s.{edges,attrs}\n", i, prefix.c_str());
    std::printf("%s\n",
                stats::FormatSummary(
                    "  synthetic",
                    stats::Summarize(release.graph.structure()))
                    .c_str());

    // The audit trail: the ledger of DP spends, summing to epsilon, plus
    // where the wall-clock went.
    std::printf("  ledger:");
    double spent = 0.0;
    for (const auto& [label, eps] : release.ledger) {
      std::printf(" %s=%.4f", label.c_str(), eps);
      spent += eps;
    }
    std::printf(" (total %.4f / %.4f)\n", spent, release.epsilon_budget);
    std::printf("  stages:");
    for (const auto& stage : release.stage_seconds) {
      std::printf(" %s=%.0fms", stage.stage.c_str(), 1e3 * stage.seconds);
    }
    std::printf("  [%.2f s total]\n", release.total_seconds);
    std::printf("  H_ThetaF=%.4f KS_S=%.4f tri_re=%.4f m_re=%.4f\n\n",
                e.theta_f_hellinger, e.degree_ks, e.triangles_re, e.edges_re);
  }
  std::printf("done. Analysts can now run exploratory queries on the\n"
              "released files without further privacy accounting.\n");
  return 0;
}

// Private release workflow: the end-to-end scenario from the paper's
// introduction. A data owner holds a sensitive attributed social graph and
// wants to hand analysts synthetic graphs they can explore freely.
//
// The serving-layer shape (Theorem 2): the owner fits the AGM parameters
// ONCE under the privacy accountant — that fit is the release — stores
// them as a release artifact, and then serves as many synthetic graphs as
// analysts ask for from a ReleaseEngine. Sampling is pure post-processing,
// so the owner's total privacy exposure is one epsilon, independent of how
// many graphs are served.
//
// Steps: load (or build) the private graph -> pick a privacy budget ->
// pipeline::FitReleaseArtifact (the only step that reads the data) ->
// audit the ledger -> persist the artifact -> reload it and build a
// ReleaseEngine -> serve a batch of synthetic graphs -> evaluate each
// against the input -> persist as edge/attribute files.
//
//   ./private_release_workflow [--epsilon=0.69] [--releases=3]
//                              [--dataset=petster] [--model=tricycle]
//                              [--threads=1] [--out=/tmp/release]
#include <cmath>
#include <cstdio>
#include <string>

#include "src/datasets/datasets.h"
#include "src/graph/graph_source.h"
#include "src/pipeline/release_engine.h"
#include "src/pipeline/release_pipeline.h"
#include "src/stats/summary.h"
#include "src/util/flags.h"
#include "src/util/rng.h"

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const int releases = static_cast<int>(flags.GetInt("releases", 3));
  const std::string out = flags.GetString("out", "/tmp/agmdp_release");
  const auto dataset =
      datasets::DatasetByName(flags.GetString("dataset", "petster"));
  util::Rng rng(flags.GetInt("seed", 1));

  pipeline::PipelineConfig config;
  config.epsilon = flags.GetDouble("epsilon", std::log(2.0));
  config.model = flags.GetString("model", "tricycle");
  config.sample.acceptance_iterations = 3;
  config.sample.threads = static_cast<int>(flags.GetInt("threads", 1));

  auto input = datasets::GenerateDataset(dataset, 1.0, 11);
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              stats::FormatSummary("input",
                                   stats::Summarize(input.value().structure()))
                  .c_str());

  // IMPORTANT privacy note: the parameters are the release. Fitting them
  // consumes epsilon once; every sample drawn afterwards is free
  // post-processing, so serving more graphs costs nothing extra.
  std::printf("total privacy cost: %.3f (one fit; %d samples are free)\n\n",
              config.epsilon, releases);

  // ---- fit once (the only step that touches the sensitive graph) ----
  auto fitted = pipeline::FitReleaseArtifact(input.value(), config, rng);
  if (!fitted.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 fitted.status().ToString().c_str());
    return 1;
  }

  // The audit trail: the ledger of DP spends, summing to epsilon, travels
  // inside the artifact.
  std::printf("ledger:");
  double spent = 0.0;
  for (const auto& [label, eps] : fitted.value().ledger) {
    std::printf(" %s=%.4f", label.c_str(), eps);
    spent += eps;
  }
  std::printf(" (total %.4f / %.4f)\n", spent,
              fitted.value().epsilon_budget);

  // ---- persist and reload the artifact (what `agmdp fit` hands to
  // `agmdp sample`, possibly on another machine) ----
  const std::string artifact_path = out + ".artifact.json";
  if (auto st = pipeline::WriteReleaseArtifact(fitted.value(), artifact_path);
      !st.ok()) {
    std::fprintf(stderr, "write: %s\n", st.ToString().c_str());
    return 1;
  }
  auto artifact = pipeline::ReadReleaseArtifact(artifact_path);
  if (!artifact.ok()) {
    std::fprintf(stderr, "reload: %s\n", artifact.status().ToString().c_str());
    return 1;
  }
  std::printf("artifact -> %s (model=%s, fingerprint=%llu)\n\n",
              artifact_path.c_str(), artifact.value().model.c_str(),
              static_cast<unsigned long long>(
                  artifact.value().config_fingerprint));

  // ---- build the serving engine and draw the whole batch ----
  pipeline::EngineOptions engine_options;
  engine_options.threads = config.sample.threads;
  engine_options.sample = config.sample;
  auto engine = pipeline::ReleaseEngine::Create(std::move(artifact).value(),
                                                engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  pipeline::SampleRequest base;
  base.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  auto graphs = engine.value()->SampleMany(releases, base);
  if (!graphs.ok()) {
    std::fprintf(stderr, "serve: %s\n", graphs.status().ToString().c_str());
    return 1;
  }

  for (int i = 0; i < releases; ++i) {
    const graph::AttributedGraph& g = graphs.value()[static_cast<size_t>(i)];
    // WriteGraph routes on the extension: pass --out=release.agmbin to
    // get checksummed binary containers instead of text pairs.
    const std::string prefix =
        graph::NumberedGraphPath(out, static_cast<uint64_t>(i));
    if (auto st = graph::WriteGraph(g, prefix); !st.ok()) {
      std::fprintf(stderr, "write: %s\n", st.ToString().c_str());
      return 1;
    }
    stats::UtilityErrors e = stats::CompareGraphs(input.value(), g);
    std::printf("release %d -> %s\n", i, prefix.c_str());
    std::printf("%s\n",
                stats::FormatSummary("  synthetic",
                                     stats::Summarize(g.structure()))
                    .c_str());
    std::printf("  H_ThetaF=%.4f KS_S=%.4f tri_re=%.4f m_re=%.4f\n\n",
                e.theta_f_hellinger, e.degree_ks, e.triangles_re, e.edges_re);
  }
  std::printf("done. Analysts can request more samples from the stored\n"
              "artifact at any time without further privacy accounting.\n");
  return 0;
}

// Downstream-task demo: relational attribute prediction, the class of
// analysis the paper's introduction motivates ("correlations are exploited
// to predict missing attribute values").
//
// A simple relational classifier — predict a node's attribute configuration
// by majority vote over its neighbors — is evaluated on (a) the private
// input graph, (b) an AGM-DP synthetic graph, and (c) an FCL-based synthetic
// graph with the same budget. If AGM-DP preserves attribute-edge
// correlations, the classifier's accuracy on (b) should resemble (a), while
// (c) should fall toward the majority-class baseline.
//
//   ./homophily_analysis [--epsilon=1.1] [--dataset=petster]
//
// Petster is the default: its attribute marginal is near-balanced, so the
// majority-class baseline is weak and the relational signal visible.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/pipeline/release_pipeline.h"
#include "src/datasets/datasets.h"
#include "src/datasets/homophily.h"
#include "src/graph/attribute_encoding.h"
#include "src/util/flags.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

// Accuracy of neighbor-majority prediction over all nodes with neighbors.
double RelationalAccuracy(const graph::AttributedGraph& g) {
  const uint32_t configs = graph::NumNodeConfigs(g.num_attributes());
  uint64_t correct = 0, evaluated = 0;
  std::vector<uint32_t> votes(configs);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& nbrs = g.structure().Neighbors(v);
    if (nbrs.empty()) continue;
    std::fill(votes.begin(), votes.end(), 0);
    for (graph::NodeId u : nbrs) ++votes[g.attribute(u)];
    const auto winner = static_cast<graph::AttrConfig>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
    correct += winner == g.attribute(v);
    ++evaluated;
  }
  return evaluated == 0 ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(evaluated);
}

// Majority-class baseline (no graph information at all).
double MajorityBaseline(const graph::AttributedGraph& g) {
  std::vector<uint64_t> counts(graph::NumNodeConfigs(g.num_attributes()), 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) ++counts[g.attribute(v)];
  return static_cast<double>(
             *std::max_element(counts.begin(), counts.end())) /
         static_cast<double>(g.num_nodes());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const double epsilon = flags.GetDouble("epsilon", std::log(3.0));
  const auto dataset =
      datasets::DatasetByName(flags.GetString("dataset", "petster"));
  util::Rng rng(flags.GetInt("seed", 13));

  auto input = datasets::GenerateDataset(
      dataset, flags.GetDouble("scale", 1.0), 21);
  if (!input.ok()) return 1;
  const graph::AttributedGraph& g = input.value();

  std::printf("dataset: %s (n=%u m=%llu), homophily (same-config edges): "
              "%.3f\n\n",
              datasets::PaperSpec(dataset).name.c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()),
              datasets::SameConfigEdgeFraction(g));

  std::printf("majority-class baseline accuracy:   %.3f\n",
              MajorityBaseline(g));
  std::printf("relational accuracy on input graph: %.3f\n\n",
              RelationalAccuracy(g));

  pipeline::PipelineConfig options;
  options.epsilon = epsilon;
  options.model = "tricycle";
  options.sample.acceptance_iterations = 3;
  auto tricl = pipeline::RunPrivateRelease(g, options, rng);
  if (!tricl.ok()) return 1;
  std::printf("AGMDP-TriCL synthetic (eps=%.2f):    %.3f (homophily %.3f)\n",
              epsilon, RelationalAccuracy(tricl.value().graph),
              datasets::SameConfigEdgeFraction(tricl.value().graph));

  options.model = "fcl";
  auto fcl = pipeline::RunPrivateRelease(g, options, rng);
  if (!fcl.ok()) return 1;
  std::printf("AGMDP-FCL synthetic (eps=%.2f):      %.3f (homophily %.3f)\n",
              epsilon, RelationalAccuracy(fcl.value().graph),
              datasets::SameConfigEdgeFraction(fcl.value().graph));

  std::printf("\nInterpretation: a downstream relational learner trained on\n"
              "the AGM-DP release sees attribute correlations similar to the\n"
              "private graph, without any per-query privacy accounting.\n");
  return 0;
}
